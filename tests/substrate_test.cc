// Tests for the SIMD micro-kernel substrate (src/tensor/kernels/,
// DESIGN.md §14):
//
//  - IEEE completeness: the historical `av == 0.0f` fast path silently
//    absorbed 0 x Inf / 0 x NaN; these regressions pin NaN propagation
//    through the forward GEMM, the dB backward GEMM, and Conv2d.
//  - Scalar bitwise identity: the kScalar kernels reproduce the
//    pre-substrate loops bit for bit on finite inputs (the zero-skip removal
//    is neutral there: x + 0.0f * b == x for every finite b).
//  - Scalar vs AVX2 differential: the implementations agree within the
//    documented FMA-contraction tolerance on random shapes, including
//    remainder tiles (m % 6, n % 16, odd k).
//  - Thread-count determinism: the AVX2 path is bitwise identical at any
//    worker count.
//  - Gradcheck under both implementations, and the 64-byte tensor buffer
//    alignment the AVX2 packing relies on.

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/aligned.h"
#include "common/random.h"
#include "common/threadpool.h"
#include "tensor/gradcheck.h"
#include "tensor/kernels/kernels.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace ts3net {
namespace {

constexpr float kInf = std::numeric_limits<float>::infinity();

/// Sets the process-wide kernel implementation for one scope.
class KernelImplGuard {
 public:
  explicit KernelImplGuard(kernels::KernelImpl impl)
      : prev_(kernels::ActiveKernelImpl()) {
    kernels::SetKernelImpl(impl);
  }
  ~KernelImplGuard() { kernels::SetKernelImpl(prev_); }

 private:
  kernels::KernelImpl prev_;
};

bool Avx2Available() {
  return kernels::CpuHasAvx2Fma() && kernels::BuildHasAvx2Kernels();
}

FloatVec RandomVec(int64_t n, Rng* rng, float zero_fraction = 0.0f) {
  FloatVec v(static_cast<size_t>(n));
  for (float& x : v) {
    x = static_cast<float>(rng->Uniform(-1.0, 1.0));
    if (zero_fraction > 0.0f && rng->Uniform(0.0, 1.0) < zero_fraction) {
      x = 0.0f;
    }
  }
  return v;
}

// ---------------------------------------------------------------------------
// Flag parsing / dispatch plumbing
// ---------------------------------------------------------------------------

TEST(KernelImplTest, ParsesKnownNamesAndRejectsUnknown) {
  kernels::KernelImpl impl;
  EXPECT_TRUE(kernels::ParseKernelImpl("scalar", &impl));
  EXPECT_EQ(impl, kernels::KernelImpl::kScalar);
  EXPECT_TRUE(kernels::ParseKernelImpl("avx2", &impl));
  EXPECT_EQ(impl, kernels::KernelImpl::kAvx2);
  EXPECT_TRUE(kernels::ParseKernelImpl("auto", &impl));
  EXPECT_EQ(impl, kernels::KernelImpl::kAuto);
  EXPECT_FALSE(kernels::ParseKernelImpl("sse", &impl));
  EXPECT_FALSE(kernels::ParseKernelImpl("AVX2", &impl));
  EXPECT_FALSE(kernels::ParseKernelImpl("", &impl));
  EXPECT_STREQ(kernels::KernelImplName(kernels::KernelImpl::kScalar),
               "scalar");
  EXPECT_STREQ(kernels::KernelImplName(kernels::KernelImpl::kAvx2), "avx2");
  EXPECT_STREQ(kernels::KernelImplName(kernels::KernelImpl::kAuto), "auto");
}

TEST(KernelImplTest, ResolvedImplNeverReturnsAuto) {
  KernelImplGuard guard(kernels::KernelImpl::kAuto);
  const kernels::KernelImpl resolved = kernels::ResolvedKernelImpl();
  EXPECT_NE(resolved, kernels::KernelImpl::kAuto);
  if (Avx2Available()) {
    EXPECT_EQ(resolved, kernels::KernelImpl::kAvx2);
  } else {
    EXPECT_EQ(resolved, kernels::KernelImpl::kScalar);
  }
}

TEST(KernelImplTest, ScalarRequestAlwaysResolvesScalar) {
  KernelImplGuard guard(kernels::KernelImpl::kScalar);
  EXPECT_EQ(kernels::ResolvedKernelImpl(), kernels::KernelImpl::kScalar);
}

// ---------------------------------------------------------------------------
// 64-byte alignment of tensor storage
// ---------------------------------------------------------------------------

TEST(AlignmentTest, TensorBuffersAre64ByteAligned) {
  Rng rng(7);
  for (const Shape& shape :
       {Shape{1}, Shape{17}, Shape{3, 5}, Shape{2, 3, 4, 5}}) {
    Tensor z = Tensor::Zeros(shape);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(z.data()) % kTensorAlignment, 0u)
        << ShapeToString(shape);
    Tensor r = Tensor::Randn(shape, &rng);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(r.data()) % kTensorAlignment, 0u);
  }
  Tensor lit = Tensor::FromData({1.0f, 2.0f, 3.0f}, {3});
  EXPECT_EQ(reinterpret_cast<uintptr_t>(lit.data()) % kTensorAlignment, 0u);
}

TEST(AlignmentTest, FloatVecReallocationStaysAligned) {
  FloatVec v;
  for (int i = 0; i < 1000; ++i) {
    v.push_back(static_cast<float>(i));
    ASSERT_EQ(reinterpret_cast<uintptr_t>(v.data()) % kTensorAlignment, 0u);
  }
}

// ---------------------------------------------------------------------------
// IEEE completeness: 0 x Inf must produce NaN (the historical zero-skip
// silently dropped it)
// ---------------------------------------------------------------------------

class NanPropagationTest
    : public ::testing::TestWithParam<kernels::KernelImpl> {
 protected:
  void SetUp() override {
    if (GetParam() == kernels::KernelImpl::kAvx2 && !Avx2Available()) {
      GTEST_SKIP() << "no AVX2+FMA on this host/build";
    }
  }
};

TEST_P(NanPropagationTest, MatMulForwardPropagatesZeroTimesInf) {
  KernelImplGuard guard(GetParam());
  // A[0, 1] = 0 meets B[1, 0] = Inf: out[0, 0] must be NaN, not 2.
  Tensor a = Tensor::FromData({1.0f, 0.0f}, {1, 2});
  Tensor b = Tensor::FromData({2.0f, kInf}, {2, 1});
  Tensor out = MatMul(a, b);
  EXPECT_TRUE(std::isnan(out.at(0)));
}

TEST_P(NanPropagationTest, MatMulGradBPropagatesZeroTimesInf) {
  KernelImplGuard guard(GetParam());
  // dB = A^T @ dOut. A zero activation against an Inf upstream gradient must
  // poison the weight gradient; the pre-substrate GemmAccAT skipped the row.
  Tensor a = Tensor::FromData({0.0f, 1.0f}, {2, 1});
  Tensor b = Tensor::FromData({3.0f}, {1, 1});
  b.set_requires_grad(true);
  Tensor out = MatMul(a, b);  // [2, 1]
  out.Backward(Tensor::FromData({kInf, 1.0f}, {2, 1}));
  ASSERT_TRUE(b.grad().defined());
  EXPECT_TRUE(std::isnan(b.grad().at(0)));
}

TEST_P(NanPropagationTest, Conv2dForwardPropagatesZeroWeightTimesInf) {
  KernelImplGuard guard(GetParam());
  // Zero weight against an Inf input: the direct conv loop skipped the whole
  // (c, dy, dx) tap when the weight was zero.
  Tensor x = Tensor::FromData({kInf, 1.0f, 1.0f, 1.0f}, {1, 1, 2, 2});
  Tensor w = Tensor::FromData({0.0f}, {1, 1, 1, 1});
  Tensor out = Conv2d(x, w, Tensor(), 0, 0);
  EXPECT_TRUE(std::isnan(out.at(0)));
  // Finite taps are unaffected: 0 * 1.0 stays exactly zero.
  EXPECT_EQ(out.at(1), 0.0f);
}

TEST_P(NanPropagationTest, Conv2dGradXPropagatesZeroWeightTimesInf) {
  KernelImplGuard guard(GetParam());
  Tensor x = Tensor::FromData({1.0f, 1.0f, 1.0f, 1.0f}, {1, 1, 2, 2});
  x.set_requires_grad(true);
  Tensor w = Tensor::FromData({0.0f}, {1, 1, 1, 1});
  Tensor out = Conv2d(x, w, Tensor(), 0, 0);
  out.Backward(Tensor::FromData({kInf, 1.0f, 1.0f, 1.0f}, {1, 1, 2, 2}));
  ASSERT_TRUE(x.grad().defined());
  EXPECT_TRUE(std::isnan(x.grad().at(0)));
}

INSTANTIATE_TEST_SUITE_P(AllImpls, NanPropagationTest,
                         ::testing::Values(kernels::KernelImpl::kScalar,
                                           kernels::KernelImpl::kAvx2),
                         [](const auto& info) {
                           return kernels::KernelImplName(info.param);
                         });

// ---------------------------------------------------------------------------
// Scalar bitwise identity with the pre-substrate kernels
// ---------------------------------------------------------------------------

// The pre-substrate loops, verbatim — including the non-IEEE zero skips.
// On finite data the skip is bitwise neutral, which is exactly what these
// tests pin down (the inputs deliberately contain exact zeros).
namespace legacy {

void GemmRowRange(const float* a, const float* b, float* out, int64_t lo,
                  int64_t hi, int64_t m, int64_t k, int64_t n,
                  const std::vector<int64_t>& a_off,
                  const std::vector<int64_t>& b_off) {
  for (int64_t r = lo; r < hi; ++r) {
    const int64_t bi = r / m;
    const int64_t i = r % m;
    const float* pa = a + a_off[bi] + i * k;
    const float* pb = b + b_off[bi];
    float* po = out + r * n;
    for (int64_t p = 0; p < k; ++p) {
      const float av = pa[p];
      if (av == 0.0f) continue;
      const float* brow = pb + p * n;
      for (int64_t j = 0; j < n; ++j) po[j] += av * brow[j];
    }
  }
}

void GemmAccBT(const float* a, const float* b, float* c, int64_t m, int64_t n,
               int64_t k) {
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < k; ++j) {
      float acc = 0.0f;
      const float* pa = a + i * n;
      const float* pb = b + j * n;
      for (int64_t t = 0; t < n; ++t) acc += pa[t] * pb[t];
      c[i * k + j] += acc;
    }
  }
}

void GemmAccAT(const float* a, const float* b, float* c, int64_t m, int64_t k,
               int64_t n) {
  for (int64_t i = 0; i < m; ++i) {
    const float* pa = a + i * k;
    const float* pb = b + i * n;
    for (int64_t p = 0; p < k; ++p) {
      const float av = pa[p];
      if (av == 0.0f) continue;
      float* pc = c + p * n;
      for (int64_t j = 0; j < n; ++j) pc[j] += av * pb[j];
    }
  }
}

}  // namespace legacy

// Bitwise equality (operator== would treat -0.0f == 0.0f and NaN != NaN);
// memcmp directly on data() is UB for empty vectors, whose data() is null.
bool BitwiseEqual(const FloatVec& got, const FloatVec& want) {
  if (got.size() != want.size()) return false;
  return got.empty() || std::memcmp(got.data(), want.data(),
                                    got.size() * sizeof(float)) == 0;
}

struct GemmShape {
  int64_t m, k, n;
};

// Remainder coverage: m % 6, n % 16 and n % 8 tails, k = 0/1, single rows.
const GemmShape kShapes[] = {{1, 1, 1},  {3, 5, 7},    {6, 16, 16},
                             {7, 17, 33}, {13, 9, 40}, {2, 1, 17},
                             {5, 32, 1},  {6, 3, 15},  {12, 24, 48},
                             {1, 64, 9},  {4, 0, 8},   {31, 33, 31}};

TEST(ScalarBitwiseTest, BatchedGemmMatchesLegacyOnFiniteData) {
  Rng rng(11);
  for (const GemmShape& s : kShapes) {
    const int64_t nbatch = 3;
    FloatVec a = RandomVec(nbatch * s.m * s.k, &rng, /*zero_fraction=*/0.25f);
    FloatVec b = RandomVec(nbatch * s.k * s.n, &rng);
    std::vector<int64_t> a_off(nbatch), b_off(nbatch);
    for (int64_t i = 0; i < nbatch; ++i) {
      a_off[i] = i * s.m * s.k;
      b_off[i] = i * s.k * s.n;
    }
    FloatVec got(static_cast<size_t>(nbatch * s.m * s.n), 0.0f);
    kernels::detail::BatchedGemmScalar(a.data(), b.data(), got.data(), a_off,
                                       b_off, s.m, s.k, s.n, nbatch);
    FloatVec want(got.size(), 0.0f);
    legacy::GemmRowRange(a.data(), b.data(), want.data(), 0, nbatch * s.m,
                         s.m, s.k, s.n, a_off, b_off);
    ASSERT_TRUE(BitwiseEqual(got, want))
        << "shape " << s.m << "x" << s.k << "x" << s.n;
  }
}

TEST(ScalarBitwiseTest, AccKernelsMatchLegacyOnFiniteData) {
  Rng rng(13);
  for (const GemmShape& s : kShapes) {
    FloatVec bt_a = RandomVec(s.m * s.n, &rng);
    FloatVec bt_b = RandomVec(s.k * s.n, &rng);
    FloatVec got(static_cast<size_t>(s.m * s.k), 0.5f);
    FloatVec want = got;
    kernels::detail::GemmAccBTScalar(bt_a.data(), bt_b.data(), got.data(),
                                     s.m, s.n, s.k);
    legacy::GemmAccBT(bt_a.data(), bt_b.data(), want.data(), s.m, s.n, s.k);
    ASSERT_TRUE(BitwiseEqual(got, want))
        << "shape " << s.m << "x" << s.k << "x" << s.n;

    FloatVec at_a = RandomVec(s.m * s.k, &rng, /*zero_fraction=*/0.25f);
    FloatVec at_b = RandomVec(s.m * s.n, &rng);
    FloatVec got2(static_cast<size_t>(s.k * s.n), -0.25f);
    FloatVec want2 = got2;
    kernels::detail::GemmAccATScalar(at_a.data(), at_b.data(), got2.data(),
                                     s.m, s.k, s.n);
    legacy::GemmAccAT(at_a.data(), at_b.data(), want2.data(), s.m, s.k, s.n);
    ASSERT_TRUE(BitwiseEqual(got2, want2))
        << "shape " << s.m << "x" << s.k << "x" << s.n;
  }
}

// ---------------------------------------------------------------------------
// Scalar vs AVX2 differential
// ---------------------------------------------------------------------------

// The implementations share the ascending-k reduction order per element; the
// AVX2 kernels differ only by FMA contraction (forward / AccAT: one rounding
// per step instead of two) or 8-lane partial sums (AccBT: the reduction is
// regrouped into 8 interleaved partials). Both perturb each of the k steps
// by at most one ulp of the running value, so the disagreement is bounded by
// ~k ulps of the result magnitude — the 8 * eps * k rtol below leaves ~8x
// headroom and a small atol absorbs catastrophic cancellation near zero.
void ExpectWithinUlps(const FloatVec& got, const FloatVec& want, int64_t k,
                      const char* label) {
  const float rtol =
      8.0f * std::numeric_limits<float>::epsilon() * static_cast<float>(k + 1);
  const float atol = 1e-6f;
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_NEAR(got[i], want[i], atol + rtol * std::fabs(want[i]))
        << label << " at " << i;
  }
}

class DifferentialTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!Avx2Available()) GTEST_SKIP() << "no AVX2+FMA on this host/build";
  }
};

TEST_F(DifferentialTest, BatchedGemmScalarVsAvx2) {
  Rng rng(17);
  for (const GemmShape& s : kShapes) {
    for (const bool broadcast_b : {false, true}) {
      const int64_t nbatch = 3;
      FloatVec a = RandomVec(nbatch * s.m * s.k, &rng);
      FloatVec b = RandomVec(nbatch * s.k * s.n, &rng);
      std::vector<int64_t> a_off(nbatch), b_off(nbatch);
      for (int64_t i = 0; i < nbatch; ++i) {
        a_off[i] = i * s.m * s.k;
        b_off[i] = broadcast_b ? 0 : i * s.k * s.n;
      }
      FloatVec scalar(static_cast<size_t>(nbatch * s.m * s.n), 0.0f);
      FloatVec avx2 = scalar;
      kernels::detail::BatchedGemmScalar(a.data(), b.data(), scalar.data(),
                                         a_off, b_off, s.m, s.k, s.n, nbatch);
      kernels::detail::BatchedGemmAvx2(a.data(), b.data(), avx2.data(), a_off,
                                       b_off, s.m, s.k, s.n, nbatch);
      ExpectWithinUlps(avx2, scalar, s.k, "BatchedGemm");
    }
  }
}

TEST_F(DifferentialTest, GemmAccBTScalarVsAvx2) {
  Rng rng(19);
  for (const GemmShape& s : kShapes) {
    FloatVec a = RandomVec(s.m * s.n, &rng);
    FloatVec b = RandomVec(s.k * s.n, &rng);
    FloatVec scalar(static_cast<size_t>(s.m * s.k), 1.0f);
    FloatVec avx2 = scalar;
    kernels::detail::GemmAccBTScalar(a.data(), b.data(), scalar.data(), s.m,
                                     s.n, s.k);
    kernels::detail::GemmAccBTAvx2(a.data(), b.data(), avx2.data(), s.m, s.n,
                                   s.k);
    ExpectWithinUlps(avx2, scalar, s.n, "GemmAccBT");
  }
}

TEST_F(DifferentialTest, GemmAccATScalarVsAvx2) {
  Rng rng(23);
  for (const GemmShape& s : kShapes) {
    FloatVec a = RandomVec(s.m * s.k, &rng);
    FloatVec b = RandomVec(s.m * s.n, &rng);
    FloatVec scalar(static_cast<size_t>(s.k * s.n), -1.0f);
    FloatVec avx2 = scalar;
    kernels::detail::GemmAccATScalar(a.data(), b.data(), scalar.data(), s.m,
                                     s.k, s.n);
    kernels::detail::GemmAccATAvx2(a.data(), b.data(), avx2.data(), s.m, s.k,
                                   s.n);
    ExpectWithinUlps(avx2, scalar, s.m, "GemmAccAT");
  }
}

TEST_F(DifferentialTest, MatMulForwardAgreesAcrossImpls) {
  Rng rng(29);
  Tensor a = Tensor::Randn({2, 13, 21}, &rng);
  Tensor b = Tensor::Randn({2, 21, 17}, &rng);
  Tensor scalar_out, avx2_out;
  {
    KernelImplGuard guard(kernels::KernelImpl::kScalar);
    scalar_out = MatMul(a, b);
  }
  {
    KernelImplGuard guard(kernels::KernelImpl::kAvx2);
    avx2_out = MatMul(a, b);
  }
  EXPECT_TRUE(AllClose(scalar_out, avx2_out, 1e-4f, 1e-5f));
}

// ---------------------------------------------------------------------------
// Thread-count determinism of the AVX2 path
// ---------------------------------------------------------------------------

TEST_F(DifferentialTest, Avx2BitwiseIdenticalAcrossThreadCounts) {
  Rng rng(31);
  const GemmShape s{67, 41, 53};  // deliberately tile- and grain-unaligned
  const int64_t nbatch = 2;
  FloatVec a = RandomVec(nbatch * s.m * s.k, &rng);
  FloatVec b = RandomVec(nbatch * s.k * s.n, &rng);
  std::vector<int64_t> a_off = {0, s.m * s.k};
  std::vector<int64_t> b_off = {0, s.k * s.n};
  FloatVec base;
  for (const int threads : {1, 2, 5}) {
    ThreadPool::SetGlobalNumThreads(threads);
    FloatVec out(static_cast<size_t>(nbatch * s.m * s.n), 0.0f);
    kernels::detail::BatchedGemmAvx2(a.data(), b.data(), out.data(), a_off,
                                     b_off, s.m, s.k, s.n, nbatch);
    if (base.empty()) {
      base = out;
    } else {
      EXPECT_TRUE(BitwiseEqual(base, out)) << "threads=" << threads;
    }
  }
  ThreadPool::SetGlobalNumThreads(1);
}

// ---------------------------------------------------------------------------
// Gradcheck under both implementations
// ---------------------------------------------------------------------------

class GradcheckTest : public NanPropagationTest {};

TEST_P(GradcheckTest, MatMulGradients) {
  KernelImplGuard guard(GetParam());
  Rng rng(37);
  Tensor a = Tensor::Randn({5, 7}, &rng, 0.5f).set_requires_grad(true);
  Tensor b = Tensor::Randn({7, 6}, &rng, 0.5f).set_requires_grad(true);
  auto result = CheckGradients(
      [](const std::vector<Tensor>& in) {
        return Sum(MatMul(in[0], in[1]));
      },
      {a, b});
  EXPECT_TRUE(result.ok) << result.message;
}

TEST_P(GradcheckTest, Conv2dGradients) {
  KernelImplGuard guard(GetParam());
  Rng rng(41);
  Tensor x = Tensor::Randn({2, 2, 4, 4}, &rng, 0.5f).set_requires_grad(true);
  Tensor w = Tensor::Randn({3, 2, 3, 3}, &rng, 0.5f).set_requires_grad(true);
  Tensor bias = Tensor::Randn({3}, &rng, 0.5f).set_requires_grad(true);
  auto result = CheckGradients(
      [](const std::vector<Tensor>& in) {
        return Sum(Conv2d(in[0], in[1], in[2], 1, 1));
      },
      {x, w, bias});
  EXPECT_TRUE(result.ok) << result.message;
}

INSTANTIATE_TEST_SUITE_P(AllImpls, GradcheckTest,
                         ::testing::Values(kernels::KernelImpl::kScalar,
                                           kernels::KernelImpl::kAvx2),
                         [](const auto& info) {
                           return kernels::KernelImplName(info.param);
                         });

}  // namespace
}  // namespace ts3net
