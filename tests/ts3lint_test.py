#!/usr/bin/env python3
"""Driver for the ts3lint tier-1 ctest entries.

  ts3lint_test.py fixtures   checker findings on tests/lint_fixtures/fake_repo
                             must match the EXPECT-LINT markers exactly
  ts3lint_test.py clean      the real tree must have zero findings

Exit 0 on success; non-zero with a human-readable diff otherwise.
"""

import json
import os
import re
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
TS3LINT = os.path.join(REPO_ROOT, "tools", "ts3lint", "ts3lint.py")
FIXTURE_ROOT = os.path.join(REPO_ROOT, "tests", "lint_fixtures", "fake_repo")

MARKER = re.compile(r"EXPECT-LINT:\s*([A-Z0-9,\s]+)")


def run_ts3lint(root):
    proc = subprocess.run(
        [sys.executable, TS3LINT, "--root", root, "--json"],
        capture_output=True, text=True)
    if proc.returncode not in (0, 1):
        print("ts3lint crashed (exit %d):\n%s" % (proc.returncode,
                                                  proc.stderr))
        sys.exit(2)
    findings = json.loads(proc.stdout)
    return {(f["path"], f["line"], f["check"]) for f in findings}


def expected_from_markers():
    expected = set()
    for dirpath, _, filenames in os.walk(FIXTURE_ROOT):
        for fn in sorted(filenames):
            if not fn.endswith((".cc", ".h")):
                continue
            path = os.path.join(dirpath, fn)
            rel = os.path.relpath(path, FIXTURE_ROOT).replace(os.sep, "/")
            with open(path, encoding="utf-8") as f:
                for lineno, line in enumerate(f, start=1):
                    m = MARKER.search(line)
                    if not m:
                        continue
                    for check in m.group(1).split(","):
                        check = check.strip()
                        if check:
                            expected.add((rel, lineno, check))
    return expected


def report_diff(missed, unexpected):
    for path, line, check in sorted(missed):
        print("MISSED   %s:%d expected %s but ts3lint did not flag it"
              % (path, line, check))
    for path, line, check in sorted(unexpected):
        print("SPURIOUS %s:%d ts3lint flagged %s with no EXPECT-LINT marker"
              % (path, line, check))


def main():
    if len(sys.argv) != 2 or sys.argv[1] not in ("fixtures", "clean"):
        print(__doc__)
        return 2

    if sys.argv[1] == "fixtures":
        actual = run_ts3lint(FIXTURE_ROOT)
        expected = expected_from_markers()
        if not expected:
            print("no EXPECT-LINT markers found under %s" % FIXTURE_ROOT)
            return 1
        missed = expected - actual
        unexpected = actual - expected
        if missed or unexpected:
            report_diff(missed, unexpected)
            return 1
        print("ts3lint fixtures: all %d seeded violations detected, "
              "no spurious findings" % len(expected))
        return 0

    actual = run_ts3lint(REPO_ROOT)
    if actual:
        for path, line, check in sorted(actual):
            print("DIRTY %s:%d %s" % (path, line, check))
        print("ts3lint clean-tree check failed: %d finding(s); run "
              "`python3 tools/ts3lint/ts3lint.py` for details" % len(actual))
        return 1
    print("ts3lint clean tree: zero findings")
    return 0


if __name__ == "__main__":
    sys.exit(main())
