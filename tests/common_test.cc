#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/check.h"
#include "common/flags.h"
#include "common/random.h"
#include "common/status.h"
#include "common/string_util.h"

namespace ts3net {
namespace {

// ---------------------------------------------------------------------------
// Status / Result
// ---------------------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad lambda");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad lambda");
}

TEST(StatusTest, AllConstructorsProduceDistinctCodes) {
  std::set<StatusCode> codes = {
      Status::InvalidArgument("x").code(), Status::NotFound("x").code(),
      Status::IOError("x").code(),         Status::OutOfRange("x").code(),
      Status::Unimplemented("x").code(),   Status::Internal("x").code()};
  EXPECT_EQ(codes.size(), 6u);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.NextUint64() == b.NextUint64());
  EXPECT_LT(same, 3);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformIntRespectsBound) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.UniformInt(17), 17u);
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, GaussianMomentsApproximatelyStandard) {
  Rng rng(13);
  const int n = 100000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    double v = rng.NextGaussian();
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(19);
  std::vector<int64_t> idx(100);
  for (int64_t i = 0; i < 100; ++i) idx[i] = i;
  rng.Shuffle(&idx);
  std::set<int64_t> seen(idx.begin(), idx.end());
  EXPECT_EQ(seen.size(), 100u);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(23);
  Rng child = parent.Fork();
  // The child should not replay the parent's stream.
  Rng parent2(23);
  parent2.Fork();
  EXPECT_NE(child.NextUint64(), parent.NextUint64());
}

// ---------------------------------------------------------------------------
// String utilities
// ---------------------------------------------------------------------------

TEST(StringUtilTest, SplitBasic) {
  auto parts = StrSplit("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  auto parts = StrSplit("a,,c,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(StringUtilTest, JoinRoundTrip) {
  std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(StrJoin(parts, "-"), "x-y-z");
}

TEST(StringUtilTest, TrimWhitespace) {
  EXPECT_EQ(StrTrim("  hello\t\n"), "hello");
  EXPECT_EQ(StrTrim(""), "");
  EXPECT_EQ(StrTrim("   "), "");
}

TEST(StringUtilTest, FormatProducesExpected) {
  EXPECT_EQ(StrFormat("%d/%s/%.2f", 3, "ab", 1.5), "3/ab/1.50");
}

TEST(StringUtilTest, ParseDoubleValid) {
  double v = 0;
  EXPECT_TRUE(ParseDouble(" 3.25 ", &v));
  EXPECT_DOUBLE_EQ(v, 3.25);
}

TEST(StringUtilTest, ParseDoubleRejectsGarbage) {
  double v = 0;
  EXPECT_FALSE(ParseDouble("3.2x", &v));
  EXPECT_FALSE(ParseDouble("", &v));
}

TEST(StringUtilTest, ParseInt64Valid) {
  int64_t v = 0;
  EXPECT_TRUE(ParseInt64("-42", &v));
  EXPECT_EQ(v, -42);
}

TEST(StringUtilTest, ParseInt64RejectsFloat) {
  int64_t v = 0;
  EXPECT_FALSE(ParseInt64("4.2", &v));
}

// ---------------------------------------------------------------------------
// FlagParser
// ---------------------------------------------------------------------------

TEST(FlagParserTest, ParsesEqualsForm) {
  const char* argv[] = {"prog", "--epochs=5", "--name=test"};
  FlagParser flags;
  ASSERT_TRUE(flags.Parse(3, const_cast<char**>(argv)).ok());
  EXPECT_EQ(flags.GetInt("epochs", 0), 5);
  EXPECT_EQ(flags.GetString("name", ""), "test");
}

TEST(FlagParserTest, ParsesSpaceForm) {
  const char* argv[] = {"prog", "--epochs", "7"};
  FlagParser flags;
  ASSERT_TRUE(flags.Parse(3, const_cast<char**>(argv)).ok());
  EXPECT_EQ(flags.GetInt("epochs", 0), 7);
}

TEST(FlagParserTest, BareFlagIsBooleanTrue) {
  const char* argv[] = {"prog", "--verbose"};
  FlagParser flags;
  ASSERT_TRUE(flags.Parse(2, const_cast<char**>(argv)).ok());
  EXPECT_TRUE(flags.GetBool("verbose", false));
}

TEST(FlagParserTest, DefaultsWhenAbsent) {
  FlagParser flags;
  ASSERT_TRUE(flags.Parse(0, nullptr).ok());
  EXPECT_EQ(flags.GetInt("missing", 9), 9);
  EXPECT_DOUBLE_EQ(flags.GetDouble("missing", 1.5), 1.5);
  EXPECT_FALSE(flags.GetBool("missing", false));
}

TEST(FlagParserTest, IntListParsing) {
  const char* argv[] = {"prog", "--horizons=24,48,96"};
  FlagParser flags;
  ASSERT_TRUE(flags.Parse(2, const_cast<char**>(argv)).ok());
  auto v = flags.GetIntList("horizons", {});
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], 24);
  EXPECT_EQ(v[2], 96);
}

TEST(FlagParserTest, PositionalCollected) {
  const char* argv[] = {"prog", "pos1", "--k=1", "pos2"};
  FlagParser flags;
  ASSERT_TRUE(flags.Parse(4, const_cast<char**>(argv)).ok());
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "pos1");
}

// ---------------------------------------------------------------------------
// TS3_CHECK
// ---------------------------------------------------------------------------

TEST(CheckDeathTest, FailedCheckAborts) {
  EXPECT_DEATH({ TS3_CHECK_EQ(1, 2) << "should die"; }, "CHECK failed");
}

TEST(CheckTest, PassingCheckIsSilent) {
  TS3_CHECK_EQ(1, 1);
  TS3_CHECK_LT(1, 2);
  TS3_CHECK_GE(2, 2);
  SUCCEED();
}

}  // namespace
}  // namespace ts3net
