#include <gtest/gtest.h>

#include <cmath>

#include "core/decomposition.h"
#include "core/sgd_layer.h"
#include "core/tf_block.h"
#include "core/ts3net.h"
#include "data/synthetic.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "tensor/ops.h"

namespace ts3net {
namespace core {
namespace {

constexpr double kPi = 3.14159265358979323846;

WaveletBank SmallBank(int lambda = 6, int order = 1) {
  WaveletBankOptions opt;
  opt.num_subbands = lambda;
  opt.order = order;
  return WaveletBank::Create(opt);
}

// ---------------------------------------------------------------------------
// SpectrumGradient (plain, Eq. 9)
// ---------------------------------------------------------------------------

TEST(SpectrumGradientTest, FirstChunkEqualsInput) {
  Rng rng(1);
  Tensor y = Tensor::Randn({3, 12, 2}, &rng);
  Tensor d = SpectrumGradient(y, 4);
  // First chunk: S_1 - S_0 = S_1.
  for (int64_t i = 0; i < 3; ++i) {
    for (int64_t t = 0; t < 4; ++t) {
      for (int64_t c = 0; c < 2; ++c) {
        EXPECT_FLOAT_EQ(d.at((i * 12 + t) * 2 + c), y.at((i * 12 + t) * 2 + c));
      }
    }
  }
}

TEST(SpectrumGradientTest, LaterChunksAreDifferences) {
  Rng rng(2);
  Tensor y = Tensor::Randn({2, 9, 1}, &rng);
  Tensor d = SpectrumGradient(y, 3);
  // Chunk 2 position t: y[t] - y[t-3].
  for (int64_t i = 0; i < 2; ++i) {
    for (int64_t t = 3; t < 9; ++t) {
      EXPECT_NEAR(d.at(i * 9 + t), y.at(i * 9 + t) - y.at(i * 9 + t - 3),
                  1e-6f);
    }
  }
}

TEST(SpectrumGradientTest, PeriodicPlaneHasZeroGradientAfterFirstChunk) {
  // A TF plane that repeats every 4 steps: spectrum gradient vanishes in all
  // chunks after the first — the defining property of the "regular" part.
  std::vector<float> v;
  for (int64_t i = 0; i < 2; ++i) {
    for (int64_t t = 0; t < 12; ++t) {
      v.push_back(static_cast<float>(std::sin(2.0 * kPi * (t % 4) / 4.0) + i));
    }
  }
  Tensor y = Tensor::FromData(std::move(v), {2, 12, 1});
  Tensor d = SpectrumGradient(y, 4);
  for (int64_t i = 0; i < 2; ++i) {
    for (int64_t t = 4; t < 12; ++t) {
      EXPECT_NEAR(d.at(i * 12 + t), 0.0f, 1e-6f);
    }
  }
}

TEST(SpectrumGradientTest, PeriodLargerThanSeriesReturnsInput) {
  Rng rng(3);
  Tensor y = Tensor::Randn({2, 8, 1}, &rng);
  EXPECT_TRUE(AllClose(SpectrumGradient(y, 100), y));
}

// ---------------------------------------------------------------------------
// TripleDecompose (analysis path)
// ---------------------------------------------------------------------------

TEST(TripleDecomposeTest, PartsReconstructInput) {
  data::SyntheticOptions o;
  o.length = 192;
  o.channels = 3;
  o.components = {{24.0, 1.0, 0.3, 96.0}};
  o.trend_slope = 3.0;
  Tensor x = data::GenerateSynthetic(o).values;
  WaveletBank bank = SmallBank(8);
  TripleParts parts = TripleDecompose(x, bank);
  // trend + seasonal == x and regular + fluctuant == seasonal, exactly.
  EXPECT_TRUE(AllClose(Add(parts.trend, parts.seasonal), x, 1e-4f, 1e-4f));
  EXPECT_TRUE(AllClose(Add(parts.regular, parts.fluctuant), parts.seasonal,
                       1e-4f, 1e-4f));
}

TEST(TripleDecomposeTest, ShapesAreConsistent) {
  Rng rng(4);
  Tensor x = Tensor::Randn({96, 2}, &rng);
  WaveletBank bank = SmallBank(5);
  TripleParts parts = TripleDecompose(x, bank);
  EXPECT_EQ(parts.trend.shape(), (Shape{96, 2}));
  EXPECT_EQ(parts.tf_distribution.shape(), (Shape{5, 96, 2}));
  EXPECT_EQ(parts.spectrum_gradient.shape(), (Shape{5, 96, 2}));
  EXPECT_GT(parts.period, 0);
  EXPECT_LE(parts.period, 96);
}

TEST(TripleDecomposeTest, StablePeriodicSeriesHasSmallFluctuantPart) {
  // Pure stable periodicity: fluctuant part should carry much less energy
  // than the regular part (away from the first chunk).
  const int64_t t_len = 192;
  std::vector<float> v(t_len);
  for (int64_t t = 0; t < t_len; ++t) {
    v[t] = static_cast<float>(std::sin(2.0 * kPi * t / 24.0));
  }
  Tensor x = Tensor::FromData(std::move(v), {t_len, 1});
  WaveletBank bank = SmallBank(8);
  TripleParts parts = TripleDecompose(x, bank);
  double e_fluct = 0, e_reg = 0;
  for (int64_t t = parts.period; t < t_len; ++t) {
    e_fluct += parts.fluctuant.at(t) * parts.fluctuant.at(t);
    e_reg += parts.regular.at(t) * parts.regular.at(t);
  }
  EXPECT_LT(e_fluct, 0.3 * e_reg);
}

TEST(TripleDecomposeTest, AmplitudeModulationRaisesFluctuantEnergy) {
  // Compare a stable tone against an amplitude-modulated one: the modulated
  // series should put relatively more energy into the fluctuant part.
  auto fluct_ratio = [](double mod_depth) {
    data::SyntheticOptions o;
    o.length = 384;
    o.channels = 1;
    o.seed = 9;
    o.components = {{24.0, 1.0, mod_depth, 96.0}};
    o.noise_std = 0.0;
    o.cross_channel_mix = 0.0;
    Tensor x = data::GenerateSynthetic(o).values;
    WaveletBank bank = SmallBank(8);
    TripleParts parts = TripleDecompose(x, bank);
    double e_fluct = 0, e_seasonal = 0;
    for (int64_t t = parts.period; t < 384; ++t) {
      e_fluct += parts.fluctuant.at(t) * parts.fluctuant.at(t);
      e_seasonal += parts.seasonal.at(t) * parts.seasonal.at(t);
    }
    return e_fluct / (e_seasonal + 1e-9);
  };
  EXPECT_GT(fluct_ratio(0.9), 1.5 * fluct_ratio(0.0));
}

// ---------------------------------------------------------------------------
// SpectrumGradientLayer (differentiable path)
// ---------------------------------------------------------------------------

TEST(SgdLayerTest, RegularPlusFluctuantEqualsInput) {
  WaveletBank bank = SmallBank(4);
  SpectrumGradientLayer layer(&bank, 24);
  Rng rng(5);
  Tensor x = Tensor::Randn({2, 24, 3}, &rng);
  auto out = layer.Decompose(x, 8);
  EXPECT_TRUE(AllClose(Add(out.regular, out.fluctuant_1d), x, 1e-4f, 1e-4f));
}

TEST(SgdLayerTest, OutputShapes) {
  WaveletBank bank = SmallBank(4);
  SpectrumGradientLayer layer(&bank, 16);
  Rng rng(6);
  Tensor x = Tensor::Randn({3, 16, 2}, &rng);
  auto out = layer.Decompose(x, 5);
  EXPECT_EQ(out.regular.shape(), (Shape{3, 16, 2}));
  EXPECT_EQ(out.fluctuant_2d.shape(), (Shape{3, 4, 16, 2}));
  EXPECT_EQ(out.fluctuant_1d.shape(), (Shape{3, 16, 2}));
}

TEST(SgdLayerTest, MatchesPlainDecompositionOnSingleSample) {
  WaveletBank bank = SmallBank(5);
  SpectrumGradientLayer layer(&bank, 32);
  Rng rng(7);
  Tensor x = Tensor::Randn({32, 2}, &rng);
  // Plain path.
  Tensor amp = CwtAmplitude(x, bank);
  Tensor delta = SpectrumGradient(amp, 8);
  Tensor fluct = Iwt(delta, bank);
  // Layer path.
  auto out = layer.Decompose(Unsqueeze(x, 0), 8);
  EXPECT_TRUE(AllClose(Squeeze(out.fluctuant_1d, 0), fluct, 1e-3f, 1e-3f));
}

TEST(SgdLayerTest, GradientFlowsThroughDecomposition) {
  WaveletBank bank = SmallBank(3);
  SpectrumGradientLayer layer(&bank, 10);
  Rng rng(8);
  Tensor x = Tensor::Randn({1, 10, 2}, &rng).set_requires_grad(true);
  auto out = layer.Decompose(x, 4);
  Sum(Square(out.regular)).Backward();
  ASSERT_TRUE(x.grad().defined());
  double norm = 0;
  for (int64_t i = 0; i < x.grad().numel(); ++i) {
    norm += std::fabs(x.grad().at(i));
  }
  EXPECT_GT(norm, 0.0);
}

// ---------------------------------------------------------------------------
// TFBlock
// ---------------------------------------------------------------------------

TEST(TfBlockTest, PreservesShape) {
  WaveletBank b1 = SmallBank(4, 1), b2 = SmallBank(4, 2);
  Rng rng(9);
  TFBlock block({&b1, &b2}, 20, 8, 16, 2, TfMode::kWavelet, &rng);
  EXPECT_EQ(block.num_branches(), 2);
  EXPECT_EQ(block.Forward(Tensor::Zeros({2, 20, 8})).shape(),
            (Shape{2, 20, 8}));
}

TEST(TfBlockTest, ReplicateModeWorks) {
  WaveletBank b1 = SmallBank(4, 1);
  Rng rng(10);
  TFBlock block({&b1}, 12, 6, 12, 2, TfMode::kReplicate, &rng);
  EXPECT_EQ(block.num_branches(), 1);
  EXPECT_EQ(block.Forward(Tensor::Zeros({1, 12, 6})).shape(),
            (Shape{1, 12, 6}));
}

TEST(TfBlockTest, GradientsReachAllParameters) {
  WaveletBank b1 = SmallBank(3, 1);
  Rng rng(11);
  TFBlock block({&b1}, 10, 4, 8, 2, TfMode::kWavelet, &rng);
  Tensor x = Tensor::Randn({1, 10, 4}, &rng);
  Sum(Square(block.Forward(x))).Backward();
  int with_grad = 0;
  for (const Tensor& p : block.Parameters()) {
    if (p.grad().defined()) ++with_grad;
  }
  EXPECT_EQ(with_grad, static_cast<int>(block.Parameters().size()));
}

TEST(TfBlockTest, MergeWeightsAreLearnable) {
  WaveletBank b1 = SmallBank(3, 1), b2 = SmallBank(3, 2);
  Rng rng(12);
  TFBlock block({&b1, &b2}, 8, 4, 8, 1, TfMode::kWavelet, &rng);
  auto named = block.NamedParameters();
  bool found = false;
  for (auto& [name, p] : named) {
    if (name == "merge_logits") {
      found = true;
      EXPECT_EQ(p.shape(), (Shape{2}));
    }
  }
  EXPECT_TRUE(found);
}

// ---------------------------------------------------------------------------
// CWT implementation switch (--ts3_cwt_impl): layers built under the fft
// default must match their dense-built twins.
// ---------------------------------------------------------------------------

class CwtImplSwitchTest : public ::testing::Test {
 protected:
  void TearDown() override { SetDefaultCwtImpl(CwtImpl::kDense); }
};

TEST_F(CwtImplSwitchTest, SgdLayerFftMatchesDense) {
  WaveletBank bank = SmallBank(4);
  Rng rng(13);
  Tensor x = Tensor::Randn({2, 24, 3}, &rng);

  SetDefaultCwtImpl(CwtImpl::kDense);
  SpectrumGradientLayer dense_layer(&bank, 24);
  Tensor xd = x.Clone().set_requires_grad(true);
  auto dense_out = dense_layer.Decompose(xd, 8);
  Sum(Square(dense_out.regular)).Backward();

  SetDefaultCwtImpl(CwtImpl::kFft);
  SpectrumGradientLayer fft_layer(&bank, 24);
  Tensor xf = x.Clone().set_requires_grad(true);
  auto fft_out = fft_layer.Decompose(xf, 8);
  Sum(Square(fft_out.regular)).Backward();

  EXPECT_TRUE(AllClose(fft_out.regular, dense_out.regular, 1e-4f, 1e-4f));
  EXPECT_TRUE(
      AllClose(fft_out.fluctuant_2d, dense_out.fluctuant_2d, 1e-4f, 1e-4f));
  EXPECT_TRUE(
      AllClose(fft_out.fluctuant_1d, dense_out.fluctuant_1d, 1e-4f, 1e-4f));
  EXPECT_TRUE(AllClose(xf.grad(), xd.grad(), 1e-3f, 1e-4f));
}

TEST_F(CwtImplSwitchTest, TfBlockFftMatchesDense) {
  WaveletBank b1 = SmallBank(4, 1), b2 = SmallBank(4, 2);
  Tensor x;
  {
    Rng rng(14);
    x = Tensor::Randn({2, 20, 8}, &rng);
  }

  SetDefaultCwtImpl(CwtImpl::kDense);
  Rng rng_dense(15);
  TFBlock dense_block({&b1, &b2}, 20, 8, 16, 2, TfMode::kWavelet, &rng_dense);
  Tensor dense_y = dense_block.Forward(x);

  // Same weight seed, fft CWT path: outputs must agree to FFT round-off.
  SetDefaultCwtImpl(CwtImpl::kFft);
  Rng rng_fft(15);
  TFBlock fft_block({&b1, &b2}, 20, 8, 16, 2, TfMode::kWavelet, &rng_fft);
  Tensor fft_y = fft_block.Forward(x);

  EXPECT_TRUE(AllClose(fft_y, dense_y, 1e-3f, 1e-4f));
}

// ---------------------------------------------------------------------------
// TS3Net end-to-end
// ---------------------------------------------------------------------------

TS3NetOptions TinyOptions() {
  TS3NetOptions o;
  o.seq_len = 24;
  o.pred_len = 12;
  o.channels = 3;
  o.d_model = 8;
  o.d_ff = 8;
  o.num_blocks = 2;
  o.lambda = 4;
  o.branch_orders = {1, 2};
  o.num_kernels = 2;
  o.dropout = 0.0f;
  return o;
}

TEST(TS3NetTest, ForwardShape) {
  Rng rng(13);
  TS3Net model(TinyOptions(), &rng);
  EXPECT_EQ(model.Forward(Tensor::Zeros({2, 24, 3})).shape(),
            (Shape{2, 12, 3}));
}

TEST(TS3NetTest, ImputationGeometry) {
  TS3NetOptions o = TinyOptions();
  o.pred_len = o.seq_len;
  o.task = TaskType::kImputation;
  Rng rng(14);
  TS3Net model(o, &rng);
  EXPECT_EQ(model.Forward(Tensor::Zeros({2, 24, 3})).shape(),
            (Shape{2, 24, 3}));
}

TEST(TS3NetTest, DeterministicGivenSeed) {
  Rng rng1(15), rng2(15);
  TS3Net m1(TinyOptions(), &rng1);
  TS3Net m2(TinyOptions(), &rng2);
  m1.SetTraining(false);
  m2.SetTraining(false);
  Rng xr(16);
  Tensor x = Tensor::Randn({2, 24, 3}, &xr);
  EXPECT_TRUE(AllClose(m1.Forward(x), m2.Forward(x)));
}

TEST(TS3NetTest, AllParametersReceiveGradients) {
  Rng rng(17);
  TS3Net model(TinyOptions(), &rng);
  Tensor x = Tensor::Randn({2, 24, 3}, &rng);
  Tensor y = Tensor::Randn({2, 12, 3}, &rng);
  nn::MseLoss(model.Forward(x), y).Backward();
  int missing = 0;
  for (const auto& [name, p] : model.NamedParameters()) {
    if (!p.grad().defined()) ++missing;
  }
  EXPECT_EQ(missing, 0);
}

TEST(TS3NetTest, AblationVariantsProduceCorrectShapes) {
  Rng rng(18);
  // w/o TD
  TS3NetOptions no_td = TinyOptions();
  no_td.DisableTripleDecomposition();
  TS3Net m1(no_td, &rng);
  EXPECT_EQ(m1.Forward(Tensor::Zeros({1, 24, 3})).shape(), (Shape{1, 12, 3}));
  // w/o TF-Block (replicate mode)
  TS3NetOptions no_tf = TinyOptions();
  no_tf.tf_mode = TfMode::kReplicate;
  TS3Net m2(no_tf, &rng);
  EXPECT_EQ(m2.Forward(Tensor::Zeros({1, 24, 3})).shape(), (Shape{1, 12, 3}));
  // w/o both
  TS3NetOptions neither = TinyOptions();
  neither.DisableTripleDecomposition();
  neither.tf_mode = TfMode::kReplicate;
  TS3Net m3(neither, &rng);
  EXPECT_EQ(m3.Forward(Tensor::Zeros({1, 24, 3})).shape(), (Shape{1, 12, 3}));
}

TEST(TS3NetTest, TsdCnnVariantHasNoSgdHeads) {
  TS3NetOptions o = TinyOptions();
  o.use_sgd = false;  // TSD-CNN of Table VII
  Rng rng(19);
  TS3Net model(o, &rng);
  for (const auto& [name, p] : model.NamedParameters()) {
    EXPECT_EQ(name.find("fluctuant_head"), std::string::npos) << name;
  }
  EXPECT_EQ(model.Forward(Tensor::Zeros({1, 24, 3})).shape(),
            (Shape{1, 12, 3}));
}

TEST(TS3NetTest, TrainingReducesLossOnSyntheticData) {
  data::SyntheticOptions so;
  so.length = 400;
  so.channels = 3;
  so.components = {{12.0, 1.0, 0.3, 100.0}};
  so.noise_std = 0.1;
  so.seed = 20;
  Tensor series = data::GenerateSynthetic(so).values;

  TS3NetOptions o = TinyOptions();
  Rng rng(21);
  TS3Net model(o, &rng);
  nn::AdamOptions adam_opt;
  adam_opt.lr = 3e-3f;
  nn::Adam adam(model.Parameters(), adam_opt);

  // Build a tiny batch by hand (8 windows).
  auto batch_at = [&](int64_t start, Tensor* x, Tensor* y) {
    std::vector<float> xv, yv;
    for (int64_t b = 0; b < 8; ++b) {
      for (int64_t t = 0; t < 24; ++t) {
        for (int64_t c = 0; c < 3; ++c) {
          xv.push_back(series.at((start + b * 30 + t) * 3 + c));
        }
      }
      for (int64_t t = 0; t < 12; ++t) {
        for (int64_t c = 0; c < 3; ++c) {
          yv.push_back(series.at((start + b * 30 + 24 + t) * 3 + c));
        }
      }
    }
    *x = Tensor::FromData(std::move(xv), {8, 24, 3});
    *y = Tensor::FromData(std::move(yv), {8, 12, 3});
  };

  Tensor x, y;
  batch_at(0, &x, &y);
  float first = 0, last = 0;
  for (int step = 0; step < 30; ++step) {
    adam.ZeroGrad();
    Tensor loss = nn::MseLoss(model.Forward(x), y);
    if (step == 0) first = loss.item();
    last = loss.item();
    loss.Backward();
    adam.Step();
  }
  EXPECT_LT(last, first * 0.8f);
}

// ---------------------------------------------------------------------------
// TsdTransformer
// ---------------------------------------------------------------------------

TEST(TsdTransformerTest, ForwardShape) {
  Rng rng(22);
  TsdTransformer model(TinyOptions(), 2, &rng);
  EXPECT_EQ(model.Forward(Tensor::Zeros({2, 24, 3})).shape(),
            (Shape{2, 12, 3}));
}

TEST(TsdTransformerTest, GradientsFlow) {
  Rng rng(23);
  TsdTransformer model(TinyOptions(), 2, &rng);
  Tensor x = Tensor::Randn({1, 24, 3}, &rng);
  Tensor y = Tensor::Randn({1, 12, 3}, &rng);
  nn::MseLoss(model.Forward(x), y).Backward();
  for (const auto& [name, p] : model.NamedParameters()) {
    EXPECT_TRUE(p.grad().defined()) << name;
  }
}

}  // namespace
}  // namespace core
}  // namespace ts3net
