#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/obs/export.h"
#include "common/obs/json.h"
#include "common/obs/metrics.h"
#include "common/obs/obs.h"
#include "common/obs/rolling.h"
#include "common/obs/trace.h"
#include "common/threadpool.h"

namespace ts3net {
namespace obs {
namespace {

// ---------------------------------------------------------------------------
// Zero overhead when disabled. This test runs first in the binary on purpose:
// with tracing off, a parallel workload must leave the metrics registry
// completely untouched and record no spans.
// ---------------------------------------------------------------------------

TEST(ObsDisabledTest, RegistryAndTraceStayEmpty) {
  ASSERT_FALSE(TracingEnabled());
  ThreadPool pool(4);
  std::atomic<int64_t> sink{0};
  {
    TS3_TRACE_SPAN("disabled/outer");
    pool.ParallelFor(0, 10000, 1, [&](int64_t lo, int64_t hi) {
      TS3_TRACE_SPAN("disabled/chunk");
      sink.fetch_add(hi - lo, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(sink.load(), 10000);
  EXPECT_TRUE(MetricsRegistry::Global()->CounterValues().empty());
  EXPECT_TRUE(CollectEvents().empty());
}

// ---------------------------------------------------------------------------
// JSON writer + validator
// ---------------------------------------------------------------------------

TEST(JsonTest, WriterProducesValidJson) {
  JsonWriter w;
  w.BeginObject();
  w.Key("name");
  w.String("bench \"quoted\" \\ \n tab\t");
  w.Key("values");
  w.BeginArray();
  w.Int(-3);
  w.Double(1.5);
  w.Bool(true);
  w.Null();
  w.BeginObject();
  w.Key("nested");
  w.Int(1);
  w.EndObject();
  w.EndArray();
  w.Key("empty_obj");
  w.BeginObject();
  w.EndObject();
  w.Key("empty_arr");
  w.BeginArray();
  w.EndArray();
  w.EndObject();

  std::string error;
  EXPECT_TRUE(JsonValidate(w.str(), &error)) << error << "\n" << w.str();
}

TEST(JsonTest, NonFiniteDoublesBecomeNull) {
  JsonWriter w;
  w.BeginArray();
  w.Double(std::nan(""));
  w.Double(std::numeric_limits<double>::infinity());
  w.EndArray();
  EXPECT_EQ(w.str(), "[null,null]");
  EXPECT_TRUE(JsonValidate(w.str()));
}

TEST(JsonTest, ValidatorAcceptsAndRejects) {
  EXPECT_TRUE(JsonValidate("{\"a\": [1, 2.5, -3e-2, \"x\\u00e9\", null]}"));
  EXPECT_TRUE(JsonValidate("  42  "));
  std::string error;
  EXPECT_FALSE(JsonValidate("", &error));
  EXPECT_FALSE(JsonValidate("{\"a\": }", &error));
  EXPECT_FALSE(JsonValidate("[1, 2", &error));
  EXPECT_FALSE(JsonValidate("{\"a\": 1} trailing", &error));
  EXPECT_FALSE(JsonValidate("[01]", &error));
  EXPECT_FALSE(JsonValidate("NaN", &error));
}

// ---------------------------------------------------------------------------
// Counters, gauges, series
// ---------------------------------------------------------------------------

TEST(MetricsTest, CounterIsExactUnderParallelFor) {
  Counter* c = MetricsRegistry::Global()->counter("test/parallel_counter");
  const int64_t before = c->value();
  ThreadPool pool(4);
  pool.ParallelFor(0, 100000, 1, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) c->Increment();
  });
  EXPECT_EQ(c->value() - before, 100000);
}

TEST(MetricsTest, RegistryReturnsStablePointers) {
  auto* registry = MetricsRegistry::Global();
  EXPECT_EQ(registry->counter("test/stable"), registry->counter("test/stable"));
  EXPECT_EQ(registry->gauge("test/stable_g"),
            registry->gauge("test/stable_g"));
  registry->gauge("test/stable_g")->Set(-2.5);
  EXPECT_DOUBLE_EQ(registry->gauge("test/stable_g")->value(), -2.5);
}

TEST(MetricsTest, SeriesKeepsOrder) {
  Series* s = MetricsRegistry::Global()->series("test/series");
  s->Append(1.0);
  s->Append(2.0);
  s->Append(3.0);
  EXPECT_EQ(s->values(), (std::vector<double>{1.0, 2.0, 3.0}));
}

// ---------------------------------------------------------------------------
// Histogram bucket / percentile math
// ---------------------------------------------------------------------------

TEST(HistogramTest, BucketCounts) {
  Histogram h({1.0, 2.0, 5.0});
  for (double v : {0.5, 1.0, 1.5, 3.0, 4.0, 7.0}) h.Observe(v);
  // Buckets: (-inf,1], (1,2], (2,5], overflow.
  EXPECT_EQ(h.BucketCounts(), (std::vector<int64_t>{2, 1, 2, 1}));
  EXPECT_EQ(h.count(), 6);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.5 + 3.0 + 4.0 + 7.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 7.0);
  EXPECT_DOUBLE_EQ(h.mean(), h.sum() / 6.0);
}

TEST(HistogramTest, EmptyReportsNaN) {
  Histogram h({1.0, 2.0});
  EXPECT_EQ(h.count(), 0);
  EXPECT_TRUE(std::isnan(h.mean()));
  EXPECT_TRUE(std::isnan(h.min()));
  EXPECT_TRUE(std::isnan(h.max()));
  EXPECT_TRUE(std::isnan(h.Percentile(50)));
}

TEST(HistogramTest, PercentileInterpolation) {
  // 100 observations uniformly filling the (0, 100] bucket in steps of 1.
  Histogram h({0.0, 100.0});
  for (int i = 1; i <= 100; ++i) h.Observe(i);
  // Rank p lands inside the (0,100] bucket; linear interpolation from the
  // bucket's lower edge (min=1 caps the first edge) to its upper bound.
  const double p50 = h.Percentile(50);
  EXPECT_GT(p50, 40.0);
  EXPECT_LT(p50, 60.0);
  const double p99 = h.Percentile(99);
  EXPECT_GT(p99, 95.0);
  EXPECT_LE(p99, 100.0);
  EXPECT_LE(h.Percentile(0), h.Percentile(50));
  EXPECT_LE(h.Percentile(50), h.Percentile(100));
}

TEST(HistogramTest, OverflowPercentileReportsMax) {
  Histogram h({1.0});
  h.Observe(50.0);
  h.Observe(80.0);
  EXPECT_DOUBLE_EQ(h.Percentile(99), 80.0);
}

TEST(HistogramTest, ObserveIsThreadSafe) {
  Histogram* h = MetricsRegistry::Global()->histogram(
      "test/parallel_hist", {10.0, 100.0, 1000.0});
  ThreadPool pool(4);
  pool.ParallelFor(0, 10000, 1, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) h->Observe(static_cast<double>(i % 2000));
  });
  EXPECT_EQ(h->count(), 10000);
  int64_t total = 0;
  for (int64_t c : h->BucketCounts()) total += c;
  EXPECT_EQ(total, 10000);
}

TEST(MetricsTest, ToJsonIsValid) {
  auto* registry = MetricsRegistry::Global();
  registry->counter("test/json_counter")->Increment(7);
  registry->gauge("test/json_gauge")->Set(1.25);
  registry->histogram("test/json_hist")->Observe(42.0);
  registry->series("test/json_series")->Append(0.5);
  registry->series("test/json_nan_series")
      ->Append(std::numeric_limits<double>::quiet_NaN());
  const std::string json = registry->ToJson();
  std::string error;
  EXPECT_TRUE(JsonValidate(json, &error)) << error;
  EXPECT_NE(json.find("test/json_counter"), std::string::npos);
  EXPECT_NE(json.find("test/json_series"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Trace spans
// ---------------------------------------------------------------------------

std::vector<TraceEvent> EventsNamed(const std::vector<TraceEvent>& events,
                                    const std::string& name) {
  std::vector<TraceEvent> out;
  for (const TraceEvent& e : events) {
    if (e.name == name) out.push_back(e);
  }
  return out;
}

bool Contains(const TraceEvent& outer, const TraceEvent& inner) {
  return outer.tid == inner.tid && outer.start_ns <= inner.start_ns &&
         inner.start_ns + inner.dur_ns <= outer.start_ns + outer.dur_ns;
}

TEST(TraceTest, SpansNestOnOneThread) {
  StartTracing();
  {
    TS3_TRACE_SPAN("outer");
    TS3_TRACE_SPAN("inner");
  }
  StopTracing();
  auto events = CollectEvents();
  auto outer = EventsNamed(events, "outer");
  auto inner = EventsNamed(events, "inner");
  ASSERT_EQ(outer.size(), 1u);
  ASSERT_EQ(inner.size(), 1u);
  EXPECT_TRUE(Contains(outer[0], inner[0]));
}

TEST(TraceTest, StartTracingClearsPreviousEvents) {
  StartTracing();
  { TS3_TRACE_SPAN("first_run"); }
  StopTracing();
  StartTracing();
  { TS3_TRACE_SPAN("second_run"); }
  StopTracing();
  auto events = CollectEvents();
  EXPECT_TRUE(EventsNamed(events, "first_run").empty());
  EXPECT_EQ(EventsNamed(events, "second_run").size(), 1u);
}

TEST(TraceTest, SpansNestAcrossPoolTasks) {
  ThreadPool pool(4);
  StartTracing();
  pool.ParallelFor(0, 1024, 1, [&](int64_t lo, int64_t hi) {
    TS3_TRACE_SPAN("work");
    volatile double x = 0;
    for (int64_t i = lo; i < hi; ++i) x = x + static_cast<double>(i);
  });
  StopTracing();
  auto events = CollectEvents();

  // The caller records one pool/parallel_for span; each executed chunk opens
  // a pool/chunk span on the thread that ran it, and the user span recorded
  // inside the chunk body must be contained in a chunk span on its own tid.
  ASSERT_EQ(EventsNamed(events, "pool/parallel_for").size(), 1u);
  auto chunks = EventsNamed(events, "pool/chunk");
  auto work = EventsNamed(events, "work");
  ASSERT_FALSE(chunks.empty());
  ASSERT_EQ(work.size(), chunks.size());
  for (const TraceEvent& w : work) {
    bool contained = false;
    for (const TraceEvent& c : chunks) contained = contained || Contains(c, w);
    EXPECT_TRUE(contained) << "work span not nested in any chunk (tid "
                           << w.tid << ")";
  }
  // Worker-side passes record pool/task spans; every chunk that ran on a
  // worker thread (a tid with task spans) must nest inside one of its tasks.
  auto tasks = EventsNamed(events, "pool/task");
  for (const TraceEvent& c : chunks) {
    bool tid_has_tasks = false;
    bool contained = false;
    for (const TraceEvent& t : tasks) {
      if (t.tid != c.tid) continue;
      tid_has_tasks = true;
      contained = contained || Contains(t, c);
    }
    if (tid_has_tasks) {
      EXPECT_TRUE(contained) << "chunk on tid " << c.tid
                             << " not nested in any pool/task";
    }
  }
}

TEST(TraceTest, PoolCountersRecordedWhileTracing) {
  auto* registry = MetricsRegistry::Global();
  ThreadPool pool(2);
  StartTracing();
  pool.ParallelFor(0, 4096, 1, [](int64_t, int64_t) {});
  StopTracing();
  EXPECT_GE(registry->counter("threadpool/parallel_for_calls")->value(), 1);
  EXPECT_GE(registry->counter("threadpool/chunks_executed")->value(), 1);
}

TEST(TraceTest, ChromeTraceJsonIsValidAndComplete) {
  StartTracing();
  {
    TS3_TRACE_SPAN("chrome_outer");
    TS3_TRACE_SPAN("chrome_inner");
  }
  StopTracing();
  const std::string json = ChromeTraceJson();
  std::string error;
  ASSERT_TRUE(JsonValidate(json, &error)) << error;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("chrome_outer"), std::string::npos);
  EXPECT_NE(json.find("chrome_inner"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
}

TEST(TraceTest, AggregateSpansAndProfileTable) {
  StartTracing();
  { TS3_TRACE_SPAN("agg/a"); }
  { TS3_TRACE_SPAN("agg/a"); }
  { TS3_TRACE_SPAN("agg/b"); }
  StopTracing();
  auto stats = AggregateSpans();
  int64_t a_count = 0, b_count = 0;
  for (const SpanStats& s : stats) {
    if (s.name == "agg/a") a_count = s.count;
    if (s.name == "agg/b") b_count = s.count;
    EXPECT_GE(s.total_ms, 0.0);
    EXPECT_GE(s.wall_share, 0.0);
  }
  EXPECT_EQ(a_count, 2);
  EXPECT_EQ(b_count, 1);
  const std::string table = ProfileTable();
  EXPECT_NE(table.find("agg/a"), std::string::npos);
  EXPECT_NE(table.find("agg/b"), std::string::npos);
}

TEST(TraceTest, DynamicSpanSkipsWorkWhenDisabled) {
  ASSERT_FALSE(TracingEnabled());
  {
    TraceSpan span;
    span.Start("never/recorded");
  }
  EXPECT_TRUE(EventsNamed(CollectEvents(), "never/recorded").empty());
}

// ---------------------------------------------------------------------------
// Obs flag plumbing
// ---------------------------------------------------------------------------

TEST(ObsOptionsTest, ParseLogLevel) {
  LogLevel level = LogLevel::kInfo;
  EXPECT_TRUE(ParseLogLevel("debug", &level));
  EXPECT_EQ(level, LogLevel::kDebug);
  EXPECT_TRUE(ParseLogLevel("WARN", &level));
  EXPECT_EQ(level, LogLevel::kWarning);
  EXPECT_TRUE(ParseLogLevel("Error", &level));
  EXPECT_EQ(level, LogLevel::kError);
  EXPECT_FALSE(ParseLogLevel("verbose", &level));
  EXPECT_EQ(level, LogLevel::kError);  // untouched on failure
}

TEST(ObsOptionsTest, TracingRequested) {
  ObsOptions o;
  EXPECT_FALSE(o.tracing_requested());
  o.profile = true;
  EXPECT_TRUE(o.tracing_requested());
  o.profile = false;
  o.trace_path = "t.json";
  EXPECT_TRUE(o.tracing_requested());
  o.metrics_json_path = "m.json";  // metrics alone do not need span recording
  o.trace_path.clear();
  EXPECT_FALSE(o.tracing_requested());
}

TEST(ObsOptionsTest, StatsRequested) {
  ObsOptions o;
  EXPECT_FALSE(o.stats_requested());
  o.stats_out_path = "stats.json";
  EXPECT_TRUE(o.stats_requested());
  o.stats_out_path.clear();
  o.prom_out_path = "metrics.prom";
  EXPECT_TRUE(o.stats_requested());
}

// ---------------------------------------------------------------------------
// Histogram snapshot coherence: the regression test for the old exporter
// bug where count, sum, and the bucket array were read with independent
// relaxed loads and could disagree mid-Observe. Snapshot() must always
// satisfy count == sum of buckets, even while 8 threads hammer Observe.
// ---------------------------------------------------------------------------

TEST(HistogramTest, SnapshotIsCoherentUnderConcurrentObserve) {
  auto* registry = MetricsRegistry::Global();
  registry->ResetForTest();
  Histogram* hist =
      registry->histogram("test/coherent_us", {1.0, 2.0, 4.0, 8.0, 16.0});

  std::atomic<bool> stop{false};
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> observers;
  for (int t = 0; t < kThreads; ++t) {
    observers.emplace_back([hist, t] {
      for (int i = 0; i < kPerThread; ++i) {
        hist->Observe(static_cast<double>((i + t) % 20));
      }
    });
  }
  std::thread reader([hist, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      HistogramSnapshot snap = hist->Snapshot();
      int64_t bucket_total = 0;
      for (int64_t b : snap.buckets) bucket_total += b;
      // The invariant the exporters depend on: derived statistics all come
      // from one captured bucket view.
      ASSERT_EQ(snap.count, bucket_total);
      ASSERT_LE(snap.count, int64_t{kThreads} * kPerThread);
    }
  });
  for (std::thread& t : observers) t.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  // Quiescent: the final snapshot is exact.
  HistogramSnapshot final_snap = hist->Snapshot();
  EXPECT_EQ(final_snap.count, int64_t{kThreads} * kPerThread);
  EXPECT_DOUBLE_EQ(final_snap.min, 0.0);
  EXPECT_DOUBLE_EQ(final_snap.max, 19.0);
  registry->ResetForTest();
}

TEST(HistogramTest, SnapshotSinceSubtractsBaseline) {
  auto* registry = MetricsRegistry::Global();
  registry->ResetForTest();
  Histogram* hist = registry->histogram("test/since_us", {1.0, 10.0});
  hist->Observe(0.5);
  hist->Observe(5.0);
  HistogramSnapshot before = hist->Snapshot();
  hist->Observe(5.0);
  hist->Observe(50.0);
  HistogramSnapshot delta = hist->Snapshot().Since(before);
  EXPECT_EQ(delta.count, 2);
  ASSERT_EQ(delta.buckets.size(), 3u);
  EXPECT_EQ(delta.buckets[0], 0);
  EXPECT_EQ(delta.buckets[1], 1);
  EXPECT_EQ(delta.buckets[2], 1);
  registry->ResetForTest();
}

// ---------------------------------------------------------------------------
// Exporters: Prometheus text exposition and the stats snapshot document.
// ---------------------------------------------------------------------------

TEST(ExportTest, PrometheusExposesAllMetricKinds) {
  auto* registry = MetricsRegistry::Global();
  registry->ResetForTest();
  registry->counter("test/export_requests")->Increment(3);
  registry->gauge("test/export_depth")->Set(2.5);
  Histogram* hist = registry->histogram("test/export_lat_us", {1.0, 10.0});
  hist->Observe(0.5);
  hist->Observe(5.0);
  hist->Observe(100.0);
  registry->rolling_counter("test/export_requests")->Increment(3);
  registry->rolling_histogram("test/export_lat_us", {1.0, 10.0})->Observe(5.0);

  const std::string prom = registry->ToPrometheus();
  // Names are mangled to [a-zA-Z0-9_] with the ts3_ prefix.
  EXPECT_NE(prom.find("# TYPE ts3_test_export_requests counter"),
            std::string::npos);
  EXPECT_NE(prom.find("ts3_test_export_requests 3"), std::string::npos);
  EXPECT_NE(prom.find("ts3_test_export_depth 2.5"), std::string::npos);
  // Histogram: cumulative le buckets plus _sum/_count.
  EXPECT_NE(prom.find("ts3_test_export_lat_us_bucket{le=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(prom.find("ts3_test_export_lat_us_bucket{le=\"10\"} 2"),
            std::string::npos);
  EXPECT_NE(prom.find("ts3_test_export_lat_us_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(prom.find("ts3_test_export_lat_us_count 3"), std::string::npos);
  // Rolling views surface as _window_* gauges.
  EXPECT_NE(prom.find("ts3_test_export_requests_window_total 3"),
            std::string::npos);
  EXPECT_NE(prom.find("ts3_test_export_lat_us_window_count 1"),
            std::string::npos);
  EXPECT_NE(prom.find("ts3_test_export_lat_us_window_p99"),
            std::string::npos);
  registry->ResetForTest();
}

TEST(ExportTest, StatsSnapshotJsonIsValidAndSelfDescribing) {
  auto* registry = MetricsRegistry::Global();
  registry->ResetForTest();
  registry->counter("test/snapshot_requests")->Increment();
  const std::string json = StatsSnapshotJson(7);
  std::string error;
  EXPECT_TRUE(JsonValidate(json, &error)) << error;
  EXPECT_NE(json.find("\"schema_version\":1"), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"ts3_stats\""), std::string::npos);
  EXPECT_NE(json.find("\"seq\":7"), std::string::npos);
  EXPECT_NE(json.find("test/snapshot_requests"), std::string::npos);
  registry->ResetForTest();
}

TEST(ExportTest, StatsReporterWritesFinalSnapshotOnDestruction) {
  auto* registry = MetricsRegistry::Global();
  registry->ResetForTest();
  registry->counter("test/reporter_requests")->Increment(9);
  const std::string stats_path = ::testing::TempDir() + "/ts3_stats.json";
  const std::string prom_path = ::testing::TempDir() + "/ts3_metrics.prom";
  std::remove(stats_path.c_str());
  std::remove(prom_path.c_str());
  {
    // period 0: no periodic thread, but the destructor still writes once.
    StatsReporter reporter(0, stats_path, prom_path);
  }
  std::FILE* f = std::fopen(stats_path.c_str(), "rb");
  ASSERT_NE(f, nullptr) << "final stats snapshot missing";
  std::string stats;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) stats.append(buf, n);
  std::fclose(f);
  std::string error;
  EXPECT_TRUE(JsonValidate(stats, &error)) << error;
  EXPECT_NE(stats.find("test/reporter_requests"), std::string::npos);

  std::FILE* pf = std::fopen(prom_path.c_str(), "rb");
  ASSERT_NE(pf, nullptr) << "final Prometheus snapshot missing";
  std::string prom;
  while ((n = std::fread(buf, 1, sizeof(buf), pf)) > 0) prom.append(buf, n);
  std::fclose(pf);
  EXPECT_NE(prom.find("ts3_test_reporter_requests 9"), std::string::npos);

  std::remove(stats_path.c_str());
  std::remove(prom_path.c_str());
  registry->ResetForTest();
}

TEST(ExportTest, ReporterThreadRacesObserversCleanly) {
  // 8 threads mutate every metric kind while the periodic reporter rewrites
  // both files at a 1ms period; run under TSan this is the exporter's
  // data-race gate. Counts are exact after the threads join.
  auto* registry = MetricsRegistry::Global();
  registry->ResetForTest();
  const std::string stats_path = ::testing::TempDir() + "/ts3_race_stats.json";
  const std::string prom_path = ::testing::TempDir() + "/ts3_race.prom";
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  {
    StatsReporter reporter(1, stats_path, prom_path);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([registry, t] {
        Counter* counter = registry->counter("test/race_requests");
        Histogram* hist = registry->histogram("test/race_lat_us", {1.0, 8.0});
        RollingCounter* rolling =
            registry->rolling_counter("test/race_requests");
        RollingHistogram* rolling_hist =
            registry->rolling_histogram("test/race_lat_us", {1.0, 8.0});
        for (int i = 0; i < kPerThread; ++i) {
          counter->Increment();
          hist->Observe(static_cast<double>((i + t) % 10));
          rolling->Increment();
          rolling_hist->Observe(static_cast<double>((i + t) % 10));
        }
      });
    }
    for (std::thread& t : threads) t.join();
  }
  EXPECT_EQ(registry->counter("test/race_requests")->value(),
            int64_t{kThreads} * kPerThread);
  HistogramSnapshot snap =
      registry->histogram("test/race_lat_us", {1.0, 8.0})->Snapshot();
  EXPECT_EQ(snap.count, int64_t{kThreads} * kPerThread);
  std::remove(stats_path.c_str());
  std::remove(prom_path.c_str());
  registry->ResetForTest();
}

}  // namespace
}  // namespace obs
}  // namespace ts3net
