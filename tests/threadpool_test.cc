// Unit coverage for the shared thread-pool runtime: lifecycle, ParallelFor
// chunking contracts, exception propagation, nesting, and the process-wide
// singleton configuration used by --ts3_num_threads.

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "common/threadpool.h"

namespace ts3net {
namespace {

TEST(ThreadPoolTest, StartupShutdownAllSizes) {
  // Construction spawns workers, destruction joins them; no work submitted.
  for (int n : {1, 2, 4, 8}) {
    ThreadPool pool(n);
    EXPECT_EQ(pool.num_threads(), n);
  }
}

TEST(ThreadPoolTest, NonPositiveSizeClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
  ThreadPool pool2(-3);
  EXPECT_EQ(pool2.num_threads(), 1);
}

TEST(ThreadPoolTest, CoversRangeExactlyOnce) {
  ThreadPool pool(4);
  const int64_t n = 1000;
  std::vector<std::atomic<int>> touched(n);
  for (auto& t : touched) t.store(0);
  pool.ParallelFor(0, n, 7, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) touched[i].fetch_add(1);
  });
  for (int64_t i = 0; i < n; ++i) EXPECT_EQ(touched[i].load(), 1) << i;
}

TEST(ThreadPoolTest, NonZeroBeginIsRespected) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> touched(100);
  for (auto& t : touched) t.store(0);
  pool.ParallelFor(40, 100, 5, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) touched[i].fetch_add(1);
  });
  for (int64_t i = 0; i < 40; ++i) EXPECT_EQ(touched[i].load(), 0);
  for (int64_t i = 40; i < 100; ++i) EXPECT_EQ(touched[i].load(), 1);
}

TEST(ThreadPoolTest, EmptyRangeIsNoOp) {
  ThreadPool pool(4);
  int calls = 0;
  pool.ParallelFor(5, 5, 1, [&](int64_t, int64_t) { ++calls; });
  pool.ParallelFor(9, 3, 1, [&](int64_t, int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPoolTest, RangeSmallerThanGrainRunsInOneChunkOnCaller) {
  ThreadPool pool(4);
  const std::thread::id caller = std::this_thread::get_id();
  int calls = 0;
  pool.ParallelFor(0, 10, 64, [&](int64_t lo, int64_t hi) {
    ++calls;
    EXPECT_EQ(lo, 0);
    EXPECT_EQ(hi, 10);
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, ChunkBoundariesAreDeterministic) {
  // The chunk → sub-range mapping must be a pure function of the loop
  // parameters, never of scheduling; this is the basis of the kernels'
  // bitwise-determinism guarantee.
  ThreadPool pool(4);
  auto run = [&] {
    std::mutex mu;
    std::set<std::pair<int64_t, int64_t>> chunks;
    pool.ParallelFor(3, 1003, 11, [&](int64_t lo, int64_t hi) {
      std::lock_guard<std::mutex> lock(mu);
      chunks.insert({lo, hi});
    });
    return chunks;
  };
  auto first = run();
  for (int trial = 0; trial < 5; ++trial) EXPECT_EQ(run(), first);
}

TEST(ThreadPoolTest, ExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(0, 100, 1,
                       [&](int64_t lo, int64_t) {
                         if (lo >= 50) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
  // The pool must still be usable after an exception.
  std::atomic<int64_t> sum{0};
  pool.ParallelFor(0, 10, 1, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) sum.fetch_add(i);
  });
  EXPECT_EQ(sum.load(), 45);
}

TEST(ThreadPoolTest, ExceptionOnSerialPathPropagates) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.ParallelFor(0, 10, 1,
                                [](int64_t, int64_t) {
                                  throw std::runtime_error("serial boom");
                                }),
               std::runtime_error);
}

TEST(ThreadPoolTest, NestedCallsRunSeriallyWithoutDeadlock) {
  ThreadPool pool(2);
  std::vector<std::atomic<int>> touched(64);
  for (auto& t : touched) t.store(0);
  pool.ParallelFor(0, 8, 1, [&](int64_t lo, int64_t hi) {
    for (int64_t outer = lo; outer < hi; ++outer) {
      // A nested ParallelFor from a worker must execute inline; with every
      // worker blocked on its own sub-loop a re-entrant dispatch would
      // deadlock a fixed-size pool.
      pool.ParallelFor(0, 8, 1, [&](int64_t ilo, int64_t ihi) {
        for (int64_t inner = ilo; inner < ihi; ++inner) {
          touched[outer * 8 + inner].fetch_add(1);
        }
      });
    }
  });
  for (auto& t : touched) EXPECT_EQ(t.load(), 1);
}

TEST(ThreadPoolDeathTest, GrainZeroRejected) {
  ThreadPool pool(2);
  EXPECT_DEATH(pool.ParallelFor(0, 10, 0, [](int64_t, int64_t) {}),
               "grain");
}

TEST(ThreadPoolDeathTest, NegativeGrainRejected) {
  ThreadPool pool(2);
  EXPECT_DEATH(pool.ParallelFor(0, 10, -4, [](int64_t, int64_t) {}),
               "grain");
}

TEST(ThreadPoolGlobalTest, SingletonReconfigures) {
  ThreadPool::SetGlobalNumThreads(3);
  EXPECT_EQ(ThreadPool::GlobalNumThreads(), 3);
  EXPECT_EQ(ThreadPool::Global()->num_threads(), 3);
  ThreadPool::SetGlobalNumThreads(1);
  EXPECT_EQ(ThreadPool::GlobalNumThreads(), 1);
  // n < 1 means hardware concurrency (at least one thread).
  ThreadPool::SetGlobalNumThreads(0);
  EXPECT_GE(ThreadPool::GlobalNumThreads(), 1);
  ThreadPool::SetGlobalNumThreads(1);
}

TEST(ThreadPoolGlobalTest, FreeParallelForUsesSingleton) {
  ThreadPool::SetGlobalNumThreads(4);
  std::vector<std::atomic<int>> touched(256);
  for (auto& t : touched) t.store(0);
  ParallelFor(0, 256, 16, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) touched[i].fetch_add(1);
  });
  for (auto& t : touched) EXPECT_EQ(t.load(), 1);
  ThreadPool::SetGlobalNumThreads(1);
}

TEST(ThreadPoolTest, ManyConcurrentLoopsFromManyThreads) {
  // Several user threads sharing one pool must all make progress.
  ThreadPool pool(4);
  std::atomic<int64_t> total{0};
  std::vector<std::thread> users;
  for (int u = 0; u < 4; ++u) {
    users.emplace_back([&] {
      for (int round = 0; round < 10; ++round) {
        pool.ParallelFor(0, 100, 9, [&](int64_t lo, int64_t hi) {
          total.fetch_add(hi - lo);
        });
      }
    });
  }
  for (auto& t : users) t.join();
  EXPECT_EQ(total.load(), 4 * 10 * 100);
}

}  // namespace
}  // namespace ts3net
