// Rolling-window metrics under an injected TickClock: bucket rotation,
// expiry, rate math, and merged window percentiles are all exactly
// reproducible because the tests own the clock (see tests/README.md).
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include "common/obs/metrics.h"
#include "common/obs/rolling.h"

namespace ts3net {
namespace obs {
namespace {

class FakeClock : public TickClock {
 public:
  int64_t NowNs() override { return now_ns_.load(std::memory_order_relaxed); }
  void Set(int64_t ns) { now_ns_.store(ns, std::memory_order_relaxed); }
  void Advance(int64_t ns) {
    now_ns_.fetch_add(ns, std::memory_order_relaxed);
  }

 private:
  std::atomic<int64_t> now_ns_{0};
};

RollingOptions SmallWindow(FakeClock* clock, int num_buckets = 4,
                           int64_t width_ns = 1000) {
  RollingOptions options;
  options.num_buckets = num_buckets;
  options.bucket_width_ns = width_ns;
  options.clock = clock;
  return options;
}

// ---------------------------------------------------------------------------
// RollingCounter
// ---------------------------------------------------------------------------

TEST(RollingCounterTest, CountsWithinWindow) {
  FakeClock clock;
  RollingCounter counter(SmallWindow(&clock));
  EXPECT_EQ(counter.WindowTotal(), 0);

  counter.Increment();
  counter.Increment(2);
  EXPECT_EQ(counter.WindowTotal(), 3);

  clock.Advance(1000);  // epoch 1
  counter.Increment(5);
  EXPECT_EQ(counter.WindowTotal(), 8);
}

TEST(RollingCounterTest, OldBucketsExpireExactlyAtWindowEdge) {
  FakeClock clock;
  RollingCounter counter(SmallWindow(&clock));  // 4 buckets x 1000ns
  counter.Increment(3);  // epoch 0

  // Epoch 3 still includes epoch 0 (window = last 4 epochs).
  clock.Set(3000);
  EXPECT_EQ(counter.WindowTotal(), 3);

  // Epoch 4 is the first moment epoch 0 leaves the window — without any
  // writer touching the ring in between.
  clock.Set(4000);
  EXPECT_EQ(counter.WindowTotal(), 0);
}

TEST(RollingCounterTest, RingSlotIsRezeroedOnReuse) {
  FakeClock clock;
  RollingCounter counter(SmallWindow(&clock));
  counter.Increment(7);  // epoch 0, slot 0

  clock.Set(4000);  // epoch 4 reuses slot 0
  counter.Increment(1);
  EXPECT_EQ(counter.WindowTotal(), 1) << "expired slot must be re-zeroed";
}

TEST(RollingCounterTest, RateUsesCoveredSpanNotFullWindow) {
  FakeClock clock;
  RollingOptions options;
  options.num_buckets = 10;
  options.bucket_width_ns = 1000000000;  // 1s
  options.clock = &clock;
  RollingCounter counter(options);

  EXPECT_DOUBLE_EQ(counter.WindowRatePerSec(), 0.0);

  // 10 events in the first half second: the covered span is 0.5s (start of
  // the oldest live bucket to now), not the full 10s window.
  clock.Set(500000000);
  counter.Increment(10);
  EXPECT_DOUBLE_EQ(counter.WindowRatePerSec(), 20.0);

  // 1.5s in, same 10 events: rate dilutes over the longer covered span.
  clock.Set(1500000000);
  EXPECT_DOUBLE_EQ(counter.WindowRatePerSec(), 10.0 * 1e9 / 1.5e9);
}

TEST(RollingCounterTest, ConcurrentIncrementsAreExactWithinOneEpoch) {
  FakeClock clock;
  clock.Set(500);  // mid-epoch: no rotation during the hammer
  RollingCounter counter(SmallWindow(&clock));
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kPerThread; ++i) counter.Increment();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter.WindowTotal(), int64_t{kThreads} * kPerThread);
}

// ---------------------------------------------------------------------------
// RollingHistogram
// ---------------------------------------------------------------------------

TEST(RollingHistogramTest, WindowSnapshotMergesLiveBuckets) {
  FakeClock clock;
  RollingHistogram hist({1.0, 2.0, 4.0, 8.0}, SmallWindow(&clock));

  hist.Observe(0.5);  // epoch 0
  hist.Observe(3.0);
  clock.Advance(1000);  // epoch 1
  hist.Observe(1.5);
  hist.Observe(7.0);

  HistogramSnapshot snap = hist.WindowSnapshot();
  EXPECT_EQ(snap.count, 4);
  EXPECT_DOUBLE_EQ(snap.sum, 12.0);
  EXPECT_DOUBLE_EQ(snap.min, 0.5);
  EXPECT_DOUBLE_EQ(snap.max, 7.0);
  EXPECT_DOUBLE_EQ(snap.mean(), 3.0);
  ASSERT_EQ(snap.buckets.size(), 5u);
  EXPECT_EQ(snap.buckets[0], 1);  // 0.5
  EXPECT_EQ(snap.buckets[1], 1);  // 1.5
  EXPECT_EQ(snap.buckets[2], 1);  // 3.0
  EXPECT_EQ(snap.buckets[3], 1);  // 7.0
  // The invariant every consumer leans on: count == sum of buckets.
  int64_t bucket_total = 0;
  for (int64_t b : snap.buckets) bucket_total += b;
  EXPECT_EQ(snap.count, bucket_total);
  // Percentiles come from the merged buckets: the median sits in the
  // (1, 2] bucket, the p99 in (4, 8].
  EXPECT_GE(snap.Percentile(50.0), 1.0);
  EXPECT_LE(snap.Percentile(50.0), 2.0);
  EXPECT_GE(snap.Percentile(99.0), 4.0);
  EXPECT_LE(snap.Percentile(99.0), 8.0);
}

TEST(RollingHistogramTest, ObservationsExpireWithTheirBucket) {
  FakeClock clock;
  RollingHistogram hist({1.0, 10.0}, SmallWindow(&clock, /*num_buckets=*/2));

  hist.Observe(5.0);  // epoch 0
  EXPECT_EQ(hist.WindowSnapshot().count, 1);

  clock.Set(1000);  // epoch 1: epoch 0 still live (2-bucket window)
  EXPECT_EQ(hist.WindowSnapshot().count, 1);

  clock.Set(2000);  // epoch 2: epoch 0 expired
  HistogramSnapshot snap = hist.WindowSnapshot();
  EXPECT_EQ(snap.count, 0);
  EXPECT_TRUE(std::isnan(snap.mean()));
  EXPECT_TRUE(std::isnan(snap.Percentile(50.0)));
}

TEST(RollingHistogramTest, SameSequenceSameSnapshot) {
  // Determinism check: two histograms fed the identical (value, tick)
  // sequence report identical window statistics.
  auto run = [] {
    FakeClock clock;
    RollingHistogram hist({1.0, 2.0, 4.0}, SmallWindow(&clock, 3));
    for (int i = 0; i < 30; ++i) {
      hist.Observe(0.25 * (i % 13));
      clock.Advance(137);
    }
    return hist.WindowSnapshot();
  };
  HistogramSnapshot a = run();
  HistogramSnapshot b = run();
  EXPECT_EQ(a.count, b.count);
  EXPECT_DOUBLE_EQ(a.sum, b.sum);
  EXPECT_DOUBLE_EQ(a.min, b.min);
  EXPECT_DOUBLE_EQ(a.max, b.max);
  EXPECT_EQ(a.buckets, b.buckets);
  EXPECT_DOUBLE_EQ(a.Percentile(95.0), b.Percentile(95.0));
}

TEST(RollingHistogramTest, DefaultBoundsAreTheTimeBounds) {
  FakeClock clock;
  RollingHistogram hist({}, SmallWindow(&clock));
  EXPECT_EQ(hist.bounds(), Histogram::DefaultTimeBoundsUs());
}

// ---------------------------------------------------------------------------
// Registry integration
// ---------------------------------------------------------------------------

TEST(RollingRegistryTest, RegistryReturnsStableRollingPointers) {
  auto* registry = MetricsRegistry::Global();
  registry->ResetForTest();
  RollingCounter* c1 = registry->rolling_counter("test/rolling_requests");
  RollingCounter* c2 = registry->rolling_counter("test/rolling_requests");
  EXPECT_EQ(c1, c2);
  RollingHistogram* h1 =
      registry->rolling_histogram("test/rolling_lat_us", {1.0, 10.0});
  RollingHistogram* h2 = registry->rolling_histogram("test/rolling_lat_us");
  EXPECT_EQ(h1, h2);
  registry->ResetForTest();
}

}  // namespace
}  // namespace obs
}  // namespace ts3net
