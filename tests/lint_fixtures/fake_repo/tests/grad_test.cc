// Fixture gradcheck evidence: mentions FixtureGood in a file that runs
// CheckGradients, satisfying TL007 for the compliant op. The names of the
// two seeded bad ops in bad_ops.cc are deliberately absent from this file
// (a mention anywhere in its text, even a comment, would count).
#include "tensor/gradcheck.h"

namespace ts3net {

bool GradchecksFixtureGood(const Tensor& x) {
  auto fn = [](const std::vector<Tensor>& in) {
    return FixtureGood(in[0]);
  };
  return CheckGradients(fn, {x}).ok;
}

}  // namespace ts3net
