// Fixture gradcheck evidence: mentions FixtureGood in a file that runs
// CheckGradients, satisfying TL007 for the compliant op. The names of the
// two seeded bad ops in bad_ops.cc are deliberately absent from this file
// (a mention anywhere in its text, even a comment, would count).
#include "tensor/gradcheck.h"

namespace ts3net {

bool GradchecksFixtureGood(const Tensor& x) {
  auto fn = [](const std::vector<Tensor>& in) {
    return FixtureGood(in[0]);
  };
  return CheckGradients(fn, {x}).ok;
}

// Gradcheck evidence for the replay fixtures (replay_ops.cc): their TL010
// markers must be the only findings those ops produce, so every op name —
// FixtureNoReplay, FixtureAllocKernel, FixtureReplayGood, Dropout — is
// mentioned here to satisfy TL007.
bool GradchecksReplayFixtures(const Tensor& x) {
  auto fn = [](const std::vector<Tensor>& in) {
    return FixtureReplayGood(in[0]);
  };
  return CheckGradients(fn, {x}).ok;
}

}  // namespace ts3net
