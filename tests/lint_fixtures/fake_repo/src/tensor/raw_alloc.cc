// Seeded TL004 violations: raw buffer allocation in kernel code.
#include <cstdlib>

namespace ts3net {

float* AllocatesWithNewArray(int n) {
  return new float[n];  // EXPECT-LINT: TL004
}

void* AllocatesWithMalloc(int n) {
  void* p = std::malloc(static_cast<size_t>(n));  // EXPECT-LINT: TL004
  return p;
}

void FreesRawBuffer(void* p) {
  free(p);  // EXPECT-LINT: TL004
}

// Negative control: a function whose name merely contains the banned token.
void buffer_free_list(int) {}

}  // namespace ts3net
