// Negative control: a fully compliant autograd op. ts3lint must report
// nothing for this file — it has a backward lambda, an "op/FixtureGood"
// span, and fake_repo/tests/grad_test.cc gradchecks it by name.
#include "common/obs/trace.h"
#include "tensor/tensor.h"

namespace ts3net {

std::vector<float> Forward(const Tensor& a);

Tensor FixtureGood(const Tensor& a) {
  TS3_TRACE_SPAN("op/FixtureGood");
  Tensor ta = a;
  return MakeOpResult(Forward(a), a.shape(), "FixtureGood", {a},
                      [ta](const Tensor& grad_out) mutable {
                        if (ta.requires_grad()) ta.AccumulateGrad(grad_out);
                      });
}

}  // namespace ts3net
