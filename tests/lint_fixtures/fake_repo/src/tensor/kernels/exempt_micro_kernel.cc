// Negative control for TL015: src/tensor/kernels/ is the one legal home
// of SIMD intrinsics (directory-prefix EXEMPT entry), so nothing in this
// file may be flagged even though it uses every banned token class.
#include <immintrin.h>

namespace ts3net {
namespace kernels {

void Axpy8(float a, const float* x, float* y) {
  const __m256 av = _mm256_set1_ps(a);
  const __m256 xv = _mm256_loadu_ps(x);
  const __m256 yv = _mm256_loadu_ps(y);
  _mm256_storeu_ps(y, _mm256_fmadd_ps(av, xv, yv));
}

}  // namespace kernels
}  // namespace ts3net
