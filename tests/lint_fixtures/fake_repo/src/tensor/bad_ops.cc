// Seeded TL005/TL006/TL007/TL008 violations: autograd dispatch that drops
// its backward kernel, trace span, and gradcheck coverage — plus a tape
// walker with no "bw/" instrumentation.
#include "tensor/tensor.h"

namespace ts3net {

std::vector<float> Forward(const Tensor& a);

// "Mystery" has no backward lambda, no "op/Mystery" span anywhere in this
// file, and no mention in a CheckGradients test.
Tensor MysteryOp(const Tensor& a) {
  return MakeOpResult(Forward(a), a.shape(), "Mystery", {a}, nullptr);  // EXPECT-LINT: TL005, TL006, TL007
}

struct FixtureKernel {
  const char* name;
};

const FixtureKernel kFixtureDyn = {"FixtureDyn"};

// Kernel-table dispatch without the dynamic std::string("op/") + kernel.name
// span, and the table entry is not gradchecked either.
Tensor DynDispatch(const FixtureKernel& kernel, const Tensor& a) {
  return MakeOpResult(Forward(a), a.shape(), kernel.name, {a},  // EXPECT-LINT: TL006, TL007
                      [](const Tensor& grad_out) { (void)grad_out; });
}

// A tape walker that runs backward kernels without opening "bw/<op>" spans.
void WalkTape(internal_tensor::GradFn* fn, const Tensor& grad) {
  fn->backward(grad);  // EXPECT-LINT: TL008
}

}  // namespace ts3net
