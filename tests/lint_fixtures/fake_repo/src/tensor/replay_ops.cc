// Seeded TL010 violations: a replay-aware op file (it includes
// tensor/replay.h) where one op never registers a replay kernel and another
// allocates inside its replay loop. FixtureReplayGood and the exempt
// training-only Dropout site are negative controls and must stay silent.
#include "common/obs/trace.h"
#include "tensor/replay.h"
#include "tensor/tensor.h"

namespace ts3net {

std::vector<float> Forward(const Tensor& a);

// Dispatch with no replay::Record before the next site: the compiled serve
// path has to reject every traced graph containing this op.
Tensor FixtureNoReplay(const Tensor& a) {
  TS3_TRACE_SPAN("op/FixtureNoReplay");
  Tensor ta = a;
  return MakeOpResult(Forward(a), a.shape(), "FixtureNoReplay", {a},  // EXPECT-LINT: TL010
                      [ta](const Tensor& grad_out) mutable {
                        if (ta.requires_grad()) ta.AccumulateGrad(grad_out);
                      });
}

// Registers a kernel, but the kernel body allocates scratch on every replay.
Tensor FixtureAllocKernel(const Tensor& a) {
  TS3_TRACE_SPAN("op/FixtureAllocKernel");
  Tensor ta = a;
  Tensor result =
      MakeOpResult(Forward(a), a.shape(), "FixtureAllocKernel", {a},
                   [ta](const Tensor& grad_out) mutable {
                     if (ta.requires_grad()) ta.AccumulateGrad(grad_out);
                   });
  const int64_t n = a.numel();
  replay::Record(result, [n](const float* const* ins, float* out) {
    std::vector<float> tmp(static_cast<size_t>(n));  // EXPECT-LINT: TL010
    for (int64_t i = 0; i < n; ++i) tmp[i] = ins[0][i];
    for (int64_t i = 0; i < n; ++i) out[i] = tmp[i];
  });
  return result;
}

// Negative control: Record follows the dispatch, and the scratch buffer
// lives in the capture list, so the replay loop itself never allocates.
Tensor FixtureReplayGood(const Tensor& a) {
  TS3_TRACE_SPAN("op/FixtureReplayGood");
  Tensor ta = a;
  Tensor result =
      MakeOpResult(Forward(a), a.shape(), "FixtureReplayGood", {a},
                   [ta](const Tensor& grad_out) mutable {
                     if (ta.requires_grad()) ta.AccumulateGrad(grad_out);
                   });
  const int64_t n = a.numel();
  replay::Record(result,
                 [n, scratch = std::vector<float>(static_cast<size_t>(n))](
                     const float* const* ins, float* out) mutable {
                   for (int64_t i = 0; i < n; ++i) scratch[i] = ins[0][i];
                   for (int64_t i = 0; i < n; ++i) out[i] = scratch[i];
                 });
  return result;
}

// Negative control: Dropout is training-only (a frozen snapshot forwards it
// as identity), so a missing replay kernel here is fine by design.
Tensor FixtureDropout(const Tensor& a) {
  TS3_TRACE_SPAN("op/Dropout");
  Tensor ta = a;
  return MakeOpResult(Forward(a), a.shape(), "Dropout", {a},
                      [ta](const Tensor& grad_out) mutable {
                        if (ta.requires_grad()) ta.AccumulateGrad(grad_out);
                      });
}

}  // namespace ts3net
