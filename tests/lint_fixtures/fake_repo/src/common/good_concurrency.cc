// Negative control for TL012-TL014 and the cpptok tokenizer: fully
// annotated concurrency, plus tokens that would trip a regex-only
// scanner -- raw strings and comments mentioning banned constructs,
// and deeply nested template types. Zero findings expected.
// (Fixture file: never compiled, scanned by ts3lint only.)

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace fixture {

// This comment mentions std::mutex and MutexLock lock(&mu_); the
// tokenizer must not mistake either for code.
constexpr const char* kHelp = R"doc(
  Usage: configure a std::mutex? Never -- and TS3_LOG( here is text,
  as are g_mode = 3; and seq.store(1); and std::thread t;
)doc";

class ShapeCache {
 public:
  int Hit(int key) TS3_EXCLUDES(mu_);
  void Warm(const std::function<int()>& build) TS3_EXCLUDES(mu_);

 private:
  // Forward declarations of nested types are not fields: TL012 must not
  // demand a guard or an `// unguarded:` justification for them.
  struct Entry;
  class Snapshot;

  mutable Mutex mu_;
  std::map<int, std::vector<std::pair<int, int>>> shapes_
      TS3_GUARDED_BY(mu_);
  // unguarded: bound once at construction, read-only afterwards.
  std::vector<int> bounds_;
  const int limit_ = 4;
  std::atomic<int> hits_{0};
};

int ShapeCache::Hit(int key) {
  MutexLock lock(&mu_);
  int n = static_cast<int>(shapes_.count(key));
  lock.Unlock();
  // relaxed: independent tally; readers only need the total.
  hits_.fetch_add(1, std::memory_order_relaxed);
  return n;
}

void ShapeCache::Warm(const std::function<int()>& build) {
  int value = build();  // built outside the lock on purpose
  MutexLock lock(&mu_);
  shapes_[0].push_back({value, value});
}

}  // namespace fixture
