// Seeded TL012 violations: a class that owns a Mutex but leaves a field
// unannotated, keeps a raw std::mutex, names a nonexistent mutex in a
// guard, and opts a function out of analysis without justification.
// (Fixture file: never compiled, scanned by ts3lint only.)

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace fixture {

class WindowPlanner {
 public:
  int PlanCount() const TS3_EXCLUDES(mu_);
  void Rebuild() TS3_NO_THREAD_SAFETY_ANALYSIS;  // EXPECT-LINT: TL012

  // thread-safety: only the construction thread calls this, before the
  // planner is published.
  void RebuildJustified() TS3_NO_THREAD_SAFETY_ANALYSIS;

 private:
  mutable Mutex mu_;
  std::mutex raw_mu_;  // EXPECT-LINT: TL012
  std::vector<int> plans_ TS3_GUARDED_BY(mu_);
  int epoch_ TS3_GUARDED_BY(other_mu_);  // EXPECT-LINT: TL012
  std::vector<int> scratch_;  // EXPECT-LINT: TL012
  // unguarded: written once in the constructor before threads exist.
  int capacity_ = 0;
  int lanes_ = 0;
  const int limit_ = 8;
  std::atomic<int> size_{0};
};

}  // namespace fixture
