// Seeded TL013 violations: blocking calls and re-locks inside the lock
// spans of a registry class. (Fixture file: scanned by ts3lint only.)

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace fixture {

class PlanRegistry {
 public:
  int Lookup(int key, const std::function<int()>& build) TS3_EXCLUDES(mu_);
  void Publish(int key) TS3_EXCLUDES(mu_);
  void Rebalance() TS3_EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  CondVar cv_;
  std::map<int, int> plans_ TS3_GUARDED_BY(mu_);
};

int PlanRegistry::Lookup(int key, const std::function<int()>& build) {
  MutexLock lock(&mu_);
  auto it = plans_.find(key);
  if (it != plans_.end()) return it->second;
  int value = build();  // EXPECT-LINT: TL013
  TS3_LOG(INFO) << "plan miss " << key;  // EXPECT-LINT: TL013
  plans_[key] = value;
  return value;
}

void PlanRegistry::Publish(int key) {
  MutexLock lock(&mu_);
  while (plans_.count(key) == 0) cv_.Wait(&mu_);  // EXPECT-LINT: TL013
  {
    MutexLock again(&mu_);  // EXPECT-LINT: TL013
  }
}

void PlanRegistry::Rebalance() {
  MutexLock lock(&mu_);
  lock.Unlock();
  ParallelFor(0, 4, [](int i) { (void)i; });  // lock dropped first: clean
}

}  // namespace fixture
