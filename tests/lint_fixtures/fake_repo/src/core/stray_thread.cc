// Seeded TL001 violations: concurrency primitives outside the shared pool.
#include <future>
#include <thread>

namespace ts3net {

void Work();

void SpawnsRawThread() {
  std::thread worker(Work);  // EXPECT-LINT: TL001
  worker.join();
}

template <typename Thread>
void DetachesAThread(Thread& t) {
  t.detach();  // EXPECT-LINT: TL001
}

void UsesStdAsync() {
  auto f = std::async(Work);  // EXPECT-LINT: TL001
  f.wait();
}

void OmpLoop(float* data, int n) {
#pragma omp parallel for  // EXPECT-LINT: TL001
  for (int i = 0; i < n; ++i) data[i] *= 2.0f;
}

}  // namespace ts3net
