// Seeded TL003 violations: direct stdout writes in library code.
#include <cstdio>
#include <iostream>

namespace ts3net {

void PrintsWithIostream(double loss) {
  std::cout << "loss=" << loss << "\n";  // EXPECT-LINT: TL003
}

void PrintsWithPrintf(double loss) {
  printf("loss=%f\n", loss);  // EXPECT-LINT: TL003
}

void PrintsWithPuts() {
  puts("done");  // EXPECT-LINT: TL003
}

// Negative control: stderr via snprintf-composed logging is the sanctioned
// path, and the word printf inside this comment must not fire either.
void LogsProperly(char* buf, int n, double loss) {
  std::snprintf(buf, static_cast<size_t>(n), "loss=%f", loss);
}

}  // namespace ts3net
