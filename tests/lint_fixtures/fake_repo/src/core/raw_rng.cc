// Seeded TL002 violations: ad-hoc RNG outside src/common/random.
#include <cstdlib>
#include <random>

namespace ts3net {

int LegacyCRand() {
  return rand();  // EXPECT-LINT: TL002
}

unsigned NondeterministicSeed() {
  std::random_device rd;  // EXPECT-LINT: TL002
  return rd();
}

double MersenneDraw(unsigned seed) {
  std::mt19937 gen(seed);  // EXPECT-LINT: TL002
  std::uniform_real_distribution<double> dist(0.0, 1.0);  // EXPECT-LINT: TL002
  return dist(gen);
}

}  // namespace ts3net
