// Seeded TL015 violations: SIMD intrinsics outside src/tensor/kernels/.
// Hand-vectorized code anywhere else bypasses the dispatched kernels::*
// entry points and their scalar fallback.
#include <immintrin.h>  // EXPECT-LINT: TL015

namespace ts3net {

float DotAvx(const float* a, const float* b, int n) {
  __m256 acc = _mm256_setzero_ps();  // EXPECT-LINT: TL015
  for (int i = 0; i + 8 <= n; i += 8) {
    const __m256 av = _mm256_loadu_ps(a + i);  // EXPECT-LINT: TL015
    const __m256 bv = _mm256_loadu_ps(b + i);  // EXPECT-LINT: TL015
    acc = _mm256_fmadd_ps(av, bv, acc);  // EXPECT-LINT: TL015
  }
  float lanes[8];
  _mm256_storeu_ps(lanes, acc);  // EXPECT-LINT: TL015
  float sum = 0.0f;
  for (int i = 0; i < 8; ++i) sum += lanes[i];
  return sum;
}

void FlushDenormals() {
  __builtin_ia32_ldmxcsr(0x9fc0u);  // EXPECT-LINT: TL015
}

}  // namespace ts3net
