// Hot-swap registry fixture: the per-model serving metric segments
// (rejected / version / retired / swaps) are allowlisted unitless counts
// and indices — registered below as negative controls — plus seeded
// TL012/TL013 violations in the swap path itself. Never compiled; the file
// only needs to look like C++ to the scanner.

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace fixture {

class MetricsRegistry {
 public:
  void* counter(const char* name);
  void* gauge(const char* name);
};

void RegisterSwapMetrics(MetricsRegistry* registry) {
  // Compliant: admission/hot-swap series use allowlisted final segments.
  registry->counter("serve/m0/rejected");
  registry->gauge("serve/m0/version");
  registry->counter("serve/m0/retired");
  registry->counter("serve/swaps");

  // Not a count, not an index, no unit: what does a bare "load" measure?
  registry->gauge("serve/m0/load");  // EXPECT-LINT: TL011
}

class SwapRegistry {
 public:
  void Publish(int snapshot) TS3_EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  int current_ TS3_GUARDED_BY(mu_) = 0;
  int swap_count_ = 0;  // EXPECT-LINT: TL012
};

void SwapRegistry::Publish(int snapshot) {
  MutexLock lock(&mu_);
  current_ = snapshot;
  // Draining the outgoing version is a blocking operation; it must happen
  // after the pointer swap releases the registry lock, not under it.
  TS3_LOG(INFO) << "published " << snapshot;  // EXPECT-LINT: TL013
}

}  // namespace fixture
