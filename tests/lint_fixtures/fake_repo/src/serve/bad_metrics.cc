// Seeded TL011 violations: metric names missing a unit suffix, and a serve
// histogram registered without its rolling windowed twin. The compliant
// registrations interleaved below are the negative controls. Never
// compiled; the file only needs to look like C++ to the scanner.
namespace ts3net {
namespace serve {

class MetricsRegistry {
 public:
  void* counter(const char* name);
  void* gauge(const char* name);
  void* histogram(const char* name);
  void* series(const char* name);
  void* rolling_counter(const char* name);
  void* rolling_histogram(const char* name);
};

void RegisterMetrics(MetricsRegistry* registry) {
  // Compliant: allowlisted final segment, plus its rolling twin.
  registry->counter("serve/requests");
  registry->rolling_counter("serve/requests");

  // Compliant: unit suffix and a rolling twin in the same file.
  registry->histogram("serve/request_latency_us");
  registry->rolling_histogram("serve/request_latency_us");

  // A bare duration with no unit: is it micro- or milliseconds?
  registry->counter("serve/queue_latency");  // EXPECT-LINT: TL011

  // A size gauge that should say _bytes.
  registry->gauge("serve/arena");  // EXPECT-LINT: TL011

  // Properly unit-suffixed, but serving histograms must also register the
  // rolling_histogram windowed twin for dashboards — missing here.
  registry->histogram("serve/batch_exec_us");  // EXPECT-LINT: TL011

  // Multi-line registration: the name literal sits on the next line, and
  // its final segment is not allowlisted. The finding lands on the line of
  // the call token, not the literal.
  registry->series(  // EXPECT-LINT: TL011
      "serve/epoch_speed");
}

}  // namespace serve
}  // namespace ts3net
