// Seeded TL014 violations: implicit seq_cst operators on atomics, a
// store with no memory order, an unjustified memory_order_relaxed, and
// a seqlock whose release stores have no acquire loads in the file.
// (Fixture file: never compiled, scanned by ts3lint only.)

#include <atomic>
#include <cstdint>

namespace fixture {

std::atomic<int> g_mode{0};
std::atomic<uint32_t> seq{0};
int64_t g_plain = 0;

inline void SetMode(int m) {
  g_mode = m;          // EXPECT-LINT: TL014
  g_mode.store(m);     // EXPECT-LINT: TL014
  g_mode++;            // EXPECT-LINT: TL014
}

inline int ReadMode() {
  int v = g_mode.load(std::memory_order_relaxed);  // EXPECT-LINT: TL014
  // relaxed: fixture rationale -- a stale mode only delays one tick.
  int w = g_mode.load(std::memory_order_relaxed);
  g_plain = v;  // plain variable: operators are fine
  return v + w;
}

inline void PublishSeq(uint32_t v) {
  seq.store(v, std::memory_order_release);  // EXPECT-LINT: TL014
}

}  // namespace fixture
