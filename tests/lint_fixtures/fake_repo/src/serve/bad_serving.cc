// Seeded TL009 violation (plus the generic checks that also apply to
// serve/ code): a serving path that forwards a module without NoGradGuard,
// spawns its own dispatcher thread, and stages batches in a raw buffer.
#include <cstdio>
#include <thread>

namespace ts3net {
namespace serve {

class Module;
class Tensor;
Tensor Forwarded(Module* m, const Tensor& x);

Tensor PredictWithoutGuard(Module* m, const Tensor& x) {
  return m->Forward(x);  // EXPECT-LINT: TL009
}

void SpawnDispatcher() {
  std::thread dispatcher([] {});  // EXPECT-LINT: TL001
  dispatcher.detach();  // EXPECT-LINT: TL001
}

float* StageBatch(int n) {
  printf("staging %d\n", n);  // EXPECT-LINT: TL003
  return static_cast<float*>(malloc(n * sizeof(float)));  // EXPECT-LINT: TL004
}

}  // namespace serve
}  // namespace ts3net
