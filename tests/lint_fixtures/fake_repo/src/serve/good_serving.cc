// Negative control for TL009: a serve file whose Forward call sits under a
// NoGradGuard is compliant. Also shows that Tensor::Detach() (capital D)
// does not trip TL001's thread-detach pattern.
namespace ts3net {
namespace serve {

struct NoGradGuard {};
class Module;

class Tensor {
 public:
  Tensor Detach() const;
};

class Module {
 public:
  Tensor Forward(const Tensor& x);
};

Tensor PredictFrozen(Module* m, const Tensor& x) {
  NoGradGuard no_grad;
  return m->Forward(x).Detach();
}

}  // namespace serve
}  // namespace ts3net
