#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "core/classifier.h"
#include "data/classification.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "tensor/ops.h"
#include "train/trainer.h"

namespace ts3net {
namespace {

// ---------------------------------------------------------------------------
// CrossEntropyLoss
// ---------------------------------------------------------------------------

TEST(CrossEntropyTest, UniformLogitsGiveLogK) {
  Tensor logits = Tensor::Zeros({3, 4});
  Tensor loss = nn::CrossEntropyLoss(logits, {0, 1, 2});
  EXPECT_NEAR(loss.item(), std::log(4.0f), 1e-5f);
}

TEST(CrossEntropyTest, ConfidentCorrectPredictionHasLowLoss) {
  Tensor logits = Tensor::FromData({10, 0, 0, 0, 10, 0}, {2, 3});
  Tensor loss = nn::CrossEntropyLoss(logits, {0, 1});
  EXPECT_LT(loss.item(), 1e-3f);
}

TEST(CrossEntropyTest, ConfidentWrongPredictionHasHighLoss) {
  Tensor logits = Tensor::FromData({10, 0, 0}, {1, 3});
  Tensor loss = nn::CrossEntropyLoss(logits, {2});
  EXPECT_GT(loss.item(), 5.0f);
}

TEST(CrossEntropyTest, StableForLargeLogits) {
  Tensor logits = Tensor::FromData({1000, 999, 998}, {1, 3});
  Tensor loss = nn::CrossEntropyLoss(logits, {0});
  EXPECT_TRUE(std::isfinite(loss.item()));
  EXPECT_LT(loss.item(), 1.0f);
}

TEST(CrossEntropyTest, GradientIsSoftmaxMinusOneHot) {
  Tensor logits =
      Tensor::FromData({1.0f, 2.0f, 0.5f}, {1, 3}).set_requires_grad(true);
  nn::CrossEntropyLoss(logits, {1}).Backward();
  // Softmax of (1, 2, 0.5).
  const float e0 = std::exp(1.0f), e1 = std::exp(2.0f), e2 = std::exp(0.5f);
  const float z = e0 + e1 + e2;
  EXPECT_NEAR(logits.grad().at(0), e0 / z, 1e-4f);
  EXPECT_NEAR(logits.grad().at(1), e1 / z - 1.0f, 1e-4f);
  EXPECT_NEAR(logits.grad().at(2), e2 / z, 1e-4f);
}

TEST(CrossEntropyDeathTest, LabelOutOfRangeAborts) {
  Tensor logits = Tensor::Zeros({1, 3});
  EXPECT_DEATH(nn::CrossEntropyLoss(logits, {3}), "label out of range");
}

// ---------------------------------------------------------------------------
// Synthetic classification data
// ---------------------------------------------------------------------------

TEST(ClassificationDataTest, ShapesAndLabelRange) {
  data::ClassificationOptions o;
  o.num_classes = 3;
  o.samples_per_class = 10;
  o.length = 48;
  o.channels = 2;
  auto data = data::GenerateClassificationData(o);
  EXPECT_EQ(data.x.shape(), (Shape{30, 48, 2}));
  EXPECT_EQ(data.labels.size(), 30u);
  for (int64_t l : data.labels) EXPECT_TRUE(l >= 0 && l < 3);
}

TEST(ClassificationDataTest, BalancedClasses) {
  data::ClassificationOptions o;
  o.num_classes = 4;
  o.samples_per_class = 8;
  auto data = data::GenerateClassificationData(o);
  std::map<int64_t, int> counts;
  for (int64_t l : data.labels) ++counts[l];
  for (int64_t k = 0; k < 4; ++k) EXPECT_EQ(counts[k], 8);
}

TEST(ClassificationDataTest, Deterministic) {
  data::ClassificationOptions o;
  o.seed = 5;
  auto a = data::GenerateClassificationData(o);
  auto b = data::GenerateClassificationData(o);
  EXPECT_TRUE(AllClose(a.x, b.x));
  EXPECT_EQ(a.labels, b.labels);
}

TEST(ClassificationDataTest, ClassesDifferInDominantPeriod) {
  data::ClassificationOptions o;
  o.num_classes = 2;
  o.samples_per_class = 4;
  o.noise_std = 0.05;
  o.length = 96;
  auto data = data::GenerateClassificationData(o);
  // Mean absolute autocorrelation-style check: the two classes should have
  // visibly different spectra. We simply check the generator produced
  // non-identical class-conditional means of |x| diffs at lag 4 vs lag 14.
  auto lag_score = [&](int64_t idx, int64_t lag) {
    double acc = 0;
    for (int64_t t = 0; t + lag < 96; ++t) {
      acc += data.x.at((idx * 96 + t) * o.channels) *
             data.x.at((idx * 96 + t + lag) * o.channels);
    }
    return acc;
  };
  // For class with period ~8, lag-8 autocorrelation is strongly positive;
  // for class with period ~18, it is not.
  double class0 = 0, class1 = 0;
  int n0 = 0, n1 = 0;
  for (int64_t i = 0; i < data.size(); ++i) {
    if (data.labels[i] == 0) {
      class0 += lag_score(i, 8);
      ++n0;
    } else {
      class1 += lag_score(i, 8);
      ++n1;
    }
  }
  EXPECT_GT(class0 / n0, class1 / n1);
}

TEST(ClassificationDataTest, SplitPreservesTotals) {
  data::ClassificationOptions o;
  o.num_classes = 3;
  o.samples_per_class = 10;
  auto all = data::GenerateClassificationData(o);
  data::ClassificationData train, test;
  data::SplitClassification(all, 0.8, &train, &test);
  EXPECT_EQ(train.size() + test.size(), all.size());
  EXPECT_EQ(train.size(), 24);
}

TEST(ClassificationDataTest, BatchGatherMatchesSource) {
  data::ClassificationOptions o;
  o.num_classes = 2;
  o.samples_per_class = 5;
  o.length = 16;
  o.channels = 1;
  auto data = data::GenerateClassificationData(o);
  Tensor x;
  std::vector<int64_t> labels;
  data::GatherClassificationBatch(data, {3, 7}, &x, &labels);
  EXPECT_EQ(x.shape(), (Shape{2, 16, 1}));
  EXPECT_EQ(labels[0], data.labels[3]);
  EXPECT_FLOAT_EQ(x.at(0), data.x.at(3 * 16));
}

// ---------------------------------------------------------------------------
// TS3NetClassifier end-to-end
// ---------------------------------------------------------------------------

TEST(ClassifierTest, LogitShape) {
  core::TS3NetOptions opt;
  opt.seq_len = 32;
  opt.channels = 2;
  opt.d_model = 8;
  opt.d_ff = 8;
  opt.lambda = 4;
  opt.num_blocks = 1;
  opt.dropout = 0.0f;
  Rng rng(1);
  core::TS3NetClassifier model(opt, 5, &rng);
  EXPECT_EQ(model.Forward(Tensor::Zeros({3, 32, 2})).shape(), (Shape{3, 5}));
}

TEST(ClassifierTest, LearnsSeparableClasses) {
  data::ClassificationOptions gen;
  gen.num_classes = 3;
  gen.samples_per_class = 40;
  gen.length = 64;
  gen.channels = 2;
  gen.noise_std = 0.2;
  gen.seed = 7;
  auto all = data::GenerateClassificationData(gen);
  data::ClassificationData train, test;
  data::SplitClassification(all, 0.75, &train, &test);

  core::TS3NetOptions opt;
  opt.seq_len = 64;
  opt.channels = 2;
  opt.d_model = 12;
  opt.d_ff = 12;
  opt.lambda = 6;
  opt.num_blocks = 1;
  opt.dropout = 0.0f;
  Rng rng(2);
  core::TS3NetClassifier model(opt, 3, &rng);

  train::TrainOptions topt;
  topt.epochs = 6;
  topt.batch_size = 16;
  topt.lr = 3e-3f;
  topt.patience = 6;
  train::FitClassification(&model, train, test, topt);

  const double acc = train::EvaluateAccuracy(&model, test);
  EXPECT_GT(acc, 0.7) << "accuracy " << acc;
}

TEST(ClassifierTest, AccuracyOfRandomModelNearChance) {
  data::ClassificationOptions gen;
  gen.num_classes = 4;
  gen.samples_per_class = 25;
  gen.length = 32;
  gen.channels = 1;
  auto data = data::GenerateClassificationData(gen);

  core::TS3NetOptions opt;
  opt.seq_len = 32;
  opt.channels = 1;
  opt.d_model = 8;
  opt.d_ff = 8;
  opt.lambda = 4;
  opt.num_blocks = 1;
  opt.dropout = 0.0f;
  Rng rng(3);
  core::TS3NetClassifier model(opt, 4, &rng);
  model.SetTraining(false);
  const double acc = train::EvaluateAccuracy(&model, data);
  EXPECT_LT(acc, 0.6);  // untrained: near 0.25, certainly below 0.6
}

}  // namespace
}  // namespace ts3net
