// Edge-case and failure-injection coverage for the tensor and common layers:
// boundary slices, degenerate shapes, numerical corners, and the abort paths
// guarding misuse.

#include <gtest/gtest.h>

#include <cmath>

#include "common/logging.h"
#include "common/status.h"
#include "models/model_config.h"
#include "models/registry.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace ts3net {
namespace {

// ---------------------------------------------------------------------------
// Boundary slices / concats / pads
// ---------------------------------------------------------------------------

TEST(EdgeTest, SliceFullRangeIsIdentity) {
  Rng rng(1);
  Tensor a = Tensor::Randn({3, 4}, &rng);
  EXPECT_TRUE(AllClose(Slice(a, 0, 0, 3), a));
  EXPECT_TRUE(AllClose(Slice(a, 1, 0, 4), a));
}

TEST(EdgeTest, SliceZeroLength) {
  Tensor a = Tensor::Zeros({3, 4});
  Tensor s = Slice(a, 0, 1, 0);
  EXPECT_EQ(s.shape(), (Shape{0, 4}));
  EXPECT_EQ(s.numel(), 0);
}

TEST(EdgeDeathTest, SliceBeyondEndAborts) {
  Tensor a = Tensor::Zeros({3});
  EXPECT_DEATH(Slice(a, 0, 2, 2), "slice");
}

TEST(EdgeTest, ConcatSingleTensorIsIdentity) {
  Rng rng(2);
  Tensor a = Tensor::Randn({2, 3}, &rng);
  EXPECT_TRUE(AllClose(Concat({a}, 0), a));
}

TEST(EdgeTest, PadZeroAmountIsIdentity) {
  Rng rng(3);
  Tensor a = Tensor::Randn({2, 3}, &rng);
  EXPECT_TRUE(AllClose(Pad(a, 1, 0, 0, 7.0f), a));
}

TEST(EdgeTest, RepeatOnceIsSameTensor) {
  Tensor a = Tensor::Ones({2});
  Tensor r = Repeat(a, 0, 1);
  EXPECT_TRUE(AllClose(r, a));
}

// ---------------------------------------------------------------------------
// Degenerate shapes
// ---------------------------------------------------------------------------

TEST(EdgeTest, MatMulWithUnitDims) {
  Tensor a = Tensor::FromData({2}, {1, 1});
  Tensor b = Tensor::FromData({3}, {1, 1});
  EXPECT_FLOAT_EQ(MatMul(a, b).item(), 6.0f);
}

TEST(EdgeTest, SoftmaxOfSingleElementAxisIsOne) {
  Tensor a = Tensor::FromData({5, -3}, {2, 1});
  Tensor s = Softmax(a, 1);
  EXPECT_FLOAT_EQ(s.at(0), 1.0f);
  EXPECT_FLOAT_EQ(s.at(1), 1.0f);
}

TEST(EdgeTest, SumOfScalarTensor) {
  Tensor a = Tensor::Scalar(4.0f);
  EXPECT_FLOAT_EQ(Sum(a).item(), 4.0f);
}

TEST(EdgeTest, MeanOverSingletonAxis) {
  Tensor a = Tensor::FromData({1, 2, 3}, {3, 1});
  Tensor m = Mean(a, {1});
  EXPECT_TRUE(AllClose(m, Tensor::FromData({1, 2, 3}, {3})));
}

TEST(EdgeTest, TransposeOfSquareTwiceIsIdentity) {
  Rng rng(4);
  Tensor a = Tensor::Randn({5, 5}, &rng);
  EXPECT_TRUE(AllClose(Transpose(Transpose(a, 0, 1), 0, 1), a));
}

// ---------------------------------------------------------------------------
// Numerical corners
// ---------------------------------------------------------------------------

TEST(EdgeTest, ExpOfLargeNegativeUnderflowsToZero) {
  Tensor a = Tensor::FromData({-200.0f}, {1});
  EXPECT_FLOAT_EQ(Exp(a).at(0), 0.0f);
}

TEST(EdgeTest, SqrtOfZeroForwardIsZero) {
  Tensor a = Tensor::Zeros({1});
  EXPECT_FLOAT_EQ(Sqrt(a).at(0), 0.0f);
}

TEST(EdgeTest, SoftmaxWithInfinityGap) {
  // One dominant logit: softmax must be exactly one-hot (no NaN).
  Tensor a = Tensor::FromData({1e30f, 0.0f}, {1, 2});
  Tensor s = Softmax(a, 1);
  EXPECT_FLOAT_EQ(s.at(0), 1.0f);
  EXPECT_FLOAT_EQ(s.at(1), 0.0f);
}

TEST(EdgeTest, DivisionGradientNearSmallDenominator) {
  Tensor a = Tensor::FromData({1.0f}, {1}).set_requires_grad(true);
  Tensor b = Tensor::FromData({1e-3f}, {1}).set_requires_grad(true);
  Sum(Div(a, b)).Backward();
  EXPECT_NEAR(a.grad().at(0), 1e3f, 1.0f);
  EXPECT_NEAR(b.grad().at(0), -1e6f, 1e3f);
}

TEST(EdgeTest, AbsGradientAtZeroIsZeroSubgradient) {
  Tensor a = Tensor::Zeros({1}).set_requires_grad(true);
  Sum(Abs(a)).Backward();
  EXPECT_FLOAT_EQ(a.grad().at(0), 0.0f);
}

// ---------------------------------------------------------------------------
// Engine misuse guards
// ---------------------------------------------------------------------------

TEST(EdgeDeathTest, UndefinedTensorShapeAborts) {
  Tensor t;
  EXPECT_DEATH(t.shape(), "CHECK failed");
}

TEST(EdgeDeathTest, AtOutOfRangeAborts) {
  Tensor t = Tensor::Zeros({2});
  EXPECT_DEATH(t.at(5), "CHECK failed");
}

TEST(EdgeDeathTest, ReshapeElementMismatchAborts) {
  Tensor t = Tensor::Zeros({4});
  EXPECT_DEATH(Reshape(t, {3}), "reshape");
}

TEST(EdgeDeathTest, PermuteInvalidAxesAborts) {
  Tensor t = Tensor::Zeros({2, 3});
  EXPECT_DEATH(Permute(t, {0, 0}), "permutation");
}

TEST(EdgeDeathTest, ResultValueOrDieAbortsOnError) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_DEATH(std::move(r).ValueOrDie(), "NotFound");
}

// ---------------------------------------------------------------------------
// Logging levels
// ---------------------------------------------------------------------------

TEST(LoggingTest, LevelFilterRoundTrips) {
  LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  TS3_LOG(Info) << "should be suppressed";
  SetLogLevel(before);
}

// ---------------------------------------------------------------------------
// ToString rendering
// ---------------------------------------------------------------------------

TEST(EdgeTest, ToStringTruncatesLongTensors) {
  Tensor t = Tensor::Arange(100);
  std::string s = t.ToString(4);
  EXPECT_NE(s.find("..."), std::string::npos);
  EXPECT_NE(s.find("[100]"), std::string::npos);
}

TEST(EdgeTest, ToStringOfUndefined) {
  Tensor t;
  EXPECT_EQ(t.ToString(), "Tensor(undefined)");
}

// ---------------------------------------------------------------------------
// Model-config validation. A user-supplied --seq_len that is too short for
// the decomposition kernels must surface as an InvalidArgument Status at
// model-construction time, not as a TS3_CHECK abort deep inside the
// moving-average pool (regression: AvgPool1dValid used to hard-crash).
// ---------------------------------------------------------------------------

TEST(ModelConfigValidationTest, ZeroSeqLenIsRejectedGracefully) {
  models::ModelConfig config;
  config.seq_len = 0;  // would reach AvgPool1dValid with t < kernel
  Rng rng(1);
  for (const char* name : {"DLinear", "MICN", "Autoformer", "TS3Net"}) {
    auto result = models::CreateModel(name, config, &rng);
    ASSERT_FALSE(result.ok()) << name;
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument) << name;
    EXPECT_NE(result.status().message().find("seq_len"), std::string::npos)
        << result.status().message();
  }
}

TEST(ModelConfigValidationTest, NegativeFieldsAreRejected) {
  Rng rng(2);
  {
    models::ModelConfig config;
    config.moving_avg = 0;
    EXPECT_FALSE(models::CreateModel("DLinear", config, &rng).ok());
  }
  {
    models::ModelConfig config;
    config.pred_len = -5;
    EXPECT_FALSE(models::CreateModel("DLinear", config, &rng).ok());
  }
  {
    models::ModelConfig config;
    config.dropout = 1.5f;
    EXPECT_FALSE(models::CreateModel("PatchTST", config, &rng).ok());
  }
}

TEST(ModelConfigValidationTest, DefaultConfigStillBuilds) {
  models::ModelConfig config;
  Rng rng(3);
  auto result = models::CreateModel("DLinear", config, &rng);
  EXPECT_TRUE(result.ok()) << result.status().message();
}

}  // namespace
}  // namespace ts3net
