#include <gtest/gtest.h>

#include <cmath>

#include "tensor/autograd_mode.h"
#include "tensor/gradcheck.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace ts3net {
namespace {

// ---------------------------------------------------------------------------
// Engine mechanics
// ---------------------------------------------------------------------------

TEST(AutogradTest, SimpleSumBackward) {
  Tensor x = Tensor::FromData({1, 2, 3}, {3}).set_requires_grad(true);
  Tensor y = Sum(x);
  y.Backward();
  EXPECT_TRUE(AllClose(x.grad(), Tensor::Ones({3})));
}

TEST(AutogradTest, ChainRuleThroughMulScalar) {
  Tensor x = Tensor::FromData({2}, {1}).set_requires_grad(true);
  Tensor y = Sum(MulScalar(x, 3.0f));
  y.Backward();
  EXPECT_FLOAT_EQ(x.grad().at(0), 3.0f);
}

TEST(AutogradTest, DiamondGraphAccumulates) {
  // y = x*x + x -> dy/dx = 2x + 1
  Tensor x = Tensor::FromData({3}, {1}).set_requires_grad(true);
  Tensor y = Sum(Mul(x, x) + x);
  y.Backward();
  EXPECT_FLOAT_EQ(x.grad().at(0), 7.0f);
}

TEST(AutogradTest, ReusedTensorAccumulatesAcrossBranches) {
  // z = sum(x) + sum(2x) -> dz/dx = 3
  Tensor x = Tensor::FromData({1, 1}, {2}).set_requires_grad(true);
  Tensor z = Sum(x) + Sum(MulScalar(x, 2.0f));
  z.Backward();
  EXPECT_TRUE(AllClose(x.grad(), Tensor::Full({2}, 3.0f)));
}

TEST(AutogradTest, DetachStopsGradient) {
  Tensor x = Tensor::FromData({2}, {1}).set_requires_grad(true);
  Tensor y = Mul(x, x).Detach();
  Tensor z = Sum(Mul(y, x));
  z.Backward();
  // d/dx (4 * x) with y treated as constant 4.
  EXPECT_FLOAT_EQ(x.grad().at(0), 4.0f);
}

TEST(AutogradTest, ZeroGradClears) {
  Tensor x = Tensor::FromData({1}, {1}).set_requires_grad(true);
  Sum(x).Backward();
  EXPECT_FLOAT_EQ(x.grad().at(0), 1.0f);
  x.ZeroGrad();
  EXPECT_FLOAT_EQ(x.grad().at(0), 0.0f);
}

TEST(AutogradTest, GradAccumulatesOverTwoBackwardCalls) {
  Tensor x = Tensor::FromData({1}, {1}).set_requires_grad(true);
  Sum(x).Backward();
  Sum(x).Backward();
  EXPECT_FLOAT_EQ(x.grad().at(0), 2.0f);
}

TEST(AutogradTest, NoGradWhenNotRequired) {
  Tensor x = Tensor::FromData({1, 2}, {2});
  Tensor y = Sum(Mul(x, x));
  EXPECT_FALSE(y.requires_grad());
  EXPECT_FALSE(x.grad().defined());
}

TEST(AutogradTest, BackwardWithExplicitSeed) {
  Tensor x = Tensor::FromData({1, 2, 3}, {3}).set_requires_grad(true);
  Tensor y = MulScalar(x, 2.0f);
  y.Backward(Tensor::FromData({1, 10, 100}, {3}));
  EXPECT_TRUE(AllClose(x.grad(), Tensor::FromData({2, 20, 200}, {3})));
}

TEST(AutogradDeathTest, NonScalarBackwardWithoutSeedAborts) {
  Tensor x = Tensor::FromData({1, 2}, {2}).set_requires_grad(true);
  Tensor y = MulScalar(x, 2.0f);
  EXPECT_DEATH(y.Backward(), "requires a scalar");
}

TEST(AutogradTest, DeepChainBackward) {
  Tensor x = Tensor::FromData({1.0f}, {1}).set_requires_grad(true);
  Tensor y = x;
  for (int i = 0; i < 50; ++i) y = MulScalar(y, 1.1f);
  Sum(y).Backward();
  EXPECT_NEAR(x.grad().at(0), std::pow(1.1f, 50.0f), 1e-2f);
}

TEST(NoGradTest, GuardSuppressesTape) {
  Tensor x = Tensor::FromData({2}, {1}).set_requires_grad(true);
  Tensor y;
  {
    NoGradGuard guard;
    y = Mul(x, x);
  }
  EXPECT_FALSE(y.requires_grad());
  EXPECT_EQ(y.grad_fn(), nullptr);
}

TEST(NoGradTest, NestedGuardsRestoreState) {
  EXPECT_TRUE(GradModeEnabled());
  {
    NoGradGuard outer;
    EXPECT_FALSE(GradModeEnabled());
    {
      NoGradGuard inner;
      EXPECT_FALSE(GradModeEnabled());
    }
    EXPECT_FALSE(GradModeEnabled());
  }
  EXPECT_TRUE(GradModeEnabled());
}

TEST(NoGradTest, RecordingResumesAfterGuard) {
  Tensor x = Tensor::FromData({3}, {1}).set_requires_grad(true);
  {
    NoGradGuard guard;
    Mul(x, x);
  }
  Tensor y = Sum(Mul(x, x));
  y.Backward();
  EXPECT_FLOAT_EQ(x.grad().at(0), 6.0f);
}

TEST(NoGradTest, ForwardValuesUnchangedUnderGuard) {
  Rng rng(123);
  Tensor x = Tensor::Randn({4, 4}, &rng).set_requires_grad(true);
  Tensor with_grad = Tanh(MatMul(x, x));
  Tensor without;
  {
    NoGradGuard guard;
    without = Tanh(MatMul(x, x));
  }
  EXPECT_TRUE(AllClose(with_grad, without));
}

// ---------------------------------------------------------------------------
// Gradient checks per op family (parameterized property sweep)
// ---------------------------------------------------------------------------

using GradFn2 = Tensor (*)(const Tensor&, const Tensor&);

struct BinaryCase {
  const char* name;
  GradFn2 fn;
  Shape shape_a;
  Shape shape_b;
  bool positive_only_b;
};

class BinaryGradTest : public ::testing::TestWithParam<BinaryCase> {};

TEST_P(BinaryGradTest, MatchesNumericGradient) {
  const BinaryCase& c = GetParam();
  Rng rng(1234);
  Tensor a = Tensor::Randn(c.shape_a, &rng);
  Tensor b = Tensor::Randn(c.shape_b, &rng);
  if (c.positive_only_b) {
    for (int64_t i = 0; i < b.numel(); ++i) {
      b.data()[i] = 1.0f + std::fabs(b.data()[i]);
    }
  }
  GradFn2 fn = c.fn;
  auto scalar_fn = [fn](const std::vector<Tensor>& in) {
    return Sum(fn(in[0], in[1]));
  };
  auto result = CheckGradients(scalar_fn, {a, b});
  EXPECT_TRUE(result.ok) << c.name << ": " << result.message;
}

INSTANTIATE_TEST_SUITE_P(
    BinaryOps, BinaryGradTest,
    ::testing::Values(
        BinaryCase{"add", &Add, {2, 3}, {2, 3}, false},
        BinaryCase{"add_broadcast_row", &Add, {2, 3}, {3}, false},
        BinaryCase{"add_broadcast_col", &Add, {2, 3}, {2, 1}, false},
        BinaryCase{"sub", &Sub, {4}, {4}, false},
        BinaryCase{"sub_broadcast", &Sub, {3, 2}, {1, 2}, false},
        BinaryCase{"mul", &Mul, {2, 2}, {2, 2}, false},
        BinaryCase{"mul_broadcast", &Mul, {2, 3, 2}, {3, 1}, false},
        BinaryCase{"div", &Div, {3}, {3}, true},
        BinaryCase{"div_broadcast", &Div, {2, 3}, {3}, true},
        BinaryCase{"matmul_2d", &MatMul, {3, 4}, {4, 2}, false},
        BinaryCase{"matmul_batched", &MatMul, {2, 3, 4}, {2, 4, 2}, false},
        BinaryCase{"matmul_bcast_rhs", &MatMul, {2, 3, 4}, {4, 3}, false}),
    [](const ::testing::TestParamInfo<BinaryCase>& info) {
      return info.param.name;
    });

using GradFn1 = Tensor (*)(const Tensor&);

struct UnaryCase {
  const char* name;
  GradFn1 fn;
  bool positive_only;
};

class UnaryGradTest : public ::testing::TestWithParam<UnaryCase>{};

TEST_P(UnaryGradTest, MatchesNumericGradient) {
  const UnaryCase& c = GetParam();
  Rng rng(99);
  Tensor a = Tensor::Randn({2, 5}, &rng);
  for (int64_t i = 0; i < a.numel(); ++i) {
    // Keep away from non-differentiable points (0 for abs/relu/sqrt).
    float v = a.data()[i];
    if (std::fabs(v) < 0.2f) v = v < 0 ? v - 0.2f : v + 0.2f;
    a.data()[i] = c.positive_only ? 0.5f + std::fabs(v) : v;
  }
  GradFn1 fn = c.fn;
  auto scalar_fn = [fn](const std::vector<Tensor>& in) {
    return Sum(fn(in[0]));
  };
  auto result = CheckGradients(scalar_fn, {a}, 1e-2f, 3e-2f);
  EXPECT_TRUE(result.ok) << c.name << ": " << result.message;
}

INSTANTIATE_TEST_SUITE_P(
    UnaryOps, UnaryGradTest,
    ::testing::Values(UnaryCase{"neg", &Neg, false},
                      UnaryCase{"exp", &Exp, false},
                      UnaryCase{"log", &Log, true},
                      UnaryCase{"sqrt", &Sqrt, true},
                      UnaryCase{"abs", &Abs, false},
                      UnaryCase{"square", &Square, false},
                      UnaryCase{"relu", &Relu, false},
                      UnaryCase{"gelu", &Gelu, false},
                      UnaryCase{"sigmoid", &Sigmoid, false},
                      UnaryCase{"tanh", &Tanh, false},
                      UnaryCase{"sin", &Sin, false},
                      UnaryCase{"cos", &Cos, false}),
    [](const ::testing::TestParamInfo<UnaryCase>& info) {
      return info.param.name;
    });

// ---------------------------------------------------------------------------
// Gradient checks for shape / reduce / conv ops
// ---------------------------------------------------------------------------

TEST(ShapeGradTest, ReshapeGradient) {
  Rng rng(5);
  Tensor a = Tensor::Randn({2, 6}, &rng);
  auto fn = [](const std::vector<Tensor>& in) {
    return Sum(Square(Reshape(in[0], {3, 4})));
  };
  auto r = CheckGradients(fn, {a});
  EXPECT_TRUE(r.ok) << r.message;
}

TEST(ShapeGradTest, PermuteGradient) {
  Rng rng(6);
  Tensor a = Tensor::Randn({2, 3, 4}, &rng);
  auto fn = [](const std::vector<Tensor>& in) {
    Tensor p = Permute(in[0], {2, 0, 1});
    return Sum(Mul(p, p));
  };
  auto r = CheckGradients(fn, {a});
  EXPECT_TRUE(r.ok) << r.message;
}

TEST(ShapeGradTest, SliceGradient) {
  Rng rng(7);
  Tensor a = Tensor::Randn({3, 5}, &rng);
  auto fn = [](const std::vector<Tensor>& in) {
    return Sum(Square(Slice(in[0], 1, 1, 3)));
  };
  auto r = CheckGradients(fn, {a});
  EXPECT_TRUE(r.ok) << r.message;
}

TEST(ShapeGradTest, ConcatGradient) {
  Rng rng(8);
  Tensor a = Tensor::Randn({2, 2}, &rng);
  Tensor b = Tensor::Randn({2, 3}, &rng);
  auto fn = [](const std::vector<Tensor>& in) {
    return Sum(Square(Concat({in[0], in[1]}, 1)));
  };
  auto r = CheckGradients(fn, {a, b});
  EXPECT_TRUE(r.ok) << r.message;
}

TEST(ShapeGradTest, PadGradient) {
  Rng rng(9);
  Tensor a = Tensor::Randn({2, 3}, &rng);
  auto fn = [](const std::vector<Tensor>& in) {
    return Sum(Square(Pad(in[0], 1, 2, 1, 0.5f)));
  };
  auto r = CheckGradients(fn, {a});
  EXPECT_TRUE(r.ok) << r.message;
}

TEST(ShapeGradTest, ReplicatePadGradient) {
  Rng rng(10);
  Tensor a = Tensor::Randn({1, 4, 2}, &rng);
  auto fn = [](const std::vector<Tensor>& in) {
    return Sum(Square(ReplicatePad(in[0], 1, 2, 2)));
  };
  auto r = CheckGradients(fn, {a});
  EXPECT_TRUE(r.ok) << r.message;
}

TEST(ShapeGradTest, RepeatGradient) {
  Rng rng(11);
  Tensor a = Tensor::Randn({3}, &rng);
  auto fn = [](const std::vector<Tensor>& in) {
    return Sum(Square(Repeat(in[0], 0, 3)));
  };
  auto r = CheckGradients(fn, {a});
  EXPECT_TRUE(r.ok) << r.message;
}

TEST(ReduceGradTest, SumAxisGradient) {
  Rng rng(12);
  Tensor a = Tensor::Randn({3, 4}, &rng);
  auto fn = [](const std::vector<Tensor>& in) {
    return Sum(Square(Sum(in[0], {1})));
  };
  auto r = CheckGradients(fn, {a});
  EXPECT_TRUE(r.ok) << r.message;
}

TEST(ReduceGradTest, MeanGradient) {
  Rng rng(13);
  Tensor a = Tensor::Randn({4, 3}, &rng);
  auto fn = [](const std::vector<Tensor>& in) {
    return Sum(Square(Mean(in[0], {0})));
  };
  auto r = CheckGradients(fn, {a});
  EXPECT_TRUE(r.ok) << r.message;
}

TEST(ReduceGradTest, VarianceGradient) {
  Rng rng(14);
  Tensor a = Tensor::Randn({5}, &rng);
  auto fn = [](const std::vector<Tensor>& in) {
    return Sum(Variance(in[0], {0}));
  };
  auto r = CheckGradients(fn, {a});
  EXPECT_TRUE(r.ok) << r.message;
}

TEST(ReduceGradTest, MaxGradientRoutesToArgmax) {
  Tensor a = Tensor::FromData({1, 5, 3}, {3}).set_requires_grad(true);
  Tensor m = Max(a, 0);
  Sum(m).Backward();
  EXPECT_TRUE(AllClose(a.grad(), Tensor::FromData({0, 1, 0}, {3})));
}

TEST(ReduceGradTest, SoftmaxGradient) {
  Rng rng(15);
  Tensor a = Tensor::Randn({2, 4}, &rng);
  auto fn = [](const std::vector<Tensor>& in) {
    Tensor s = Softmax(in[0], 1);
    // Weighted sum to create a non-trivial gradient through softmax.
    Tensor w = Tensor::FromData({1, -2, 3, 0.5f, -1, 2, 0.3f, 1.7f}, {2, 4});
    return Sum(Mul(s, w));
  };
  auto r = CheckGradients(fn, {a}, 1e-2f, 3e-2f);
  EXPECT_TRUE(r.ok) << r.message;
}

TEST(ConvGradTest, Conv2dInputGradient) {
  Rng rng(16);
  Tensor x = Tensor::Randn({1, 2, 4, 4}, &rng);
  Tensor w = Tensor::Randn({3, 2, 3, 3}, &rng, 0.5f);
  auto fn = [&w](const std::vector<Tensor>& in) {
    return Sum(Square(Conv2d(in[0], w, Tensor(), 1, 1)));
  };
  auto r = CheckGradients(fn, {x}, 1e-2f, 5e-2f);
  EXPECT_TRUE(r.ok) << r.message;
}

TEST(ConvGradTest, Conv2dWeightAndBiasGradient) {
  Rng rng(17);
  Tensor x = Tensor::Randn({2, 1, 3, 3}, &rng);
  Tensor w = Tensor::Randn({2, 1, 2, 2}, &rng, 0.5f);
  Tensor b = Tensor::Randn({2}, &rng, 0.5f);
  auto fn = [&x](const std::vector<Tensor>& in) {
    return Sum(Square(Conv2d(x, in[0], in[1], 1, 1)));
  };
  auto r = CheckGradients(fn, {w, b}, 1e-2f, 5e-2f);
  EXPECT_TRUE(r.ok) << r.message;
}

TEST(ConvGradTest, MovingAvgGradient) {
  Rng rng(18);
  Tensor x = Tensor::Randn({1, 6, 2}, &rng);
  auto fn = [](const std::vector<Tensor>& in) {
    return Sum(Square(MovingAvg1d(in[0], 3)));
  };
  auto r = CheckGradients(fn, {x});
  EXPECT_TRUE(r.ok) << r.message;
}

TEST(ConvGradTest, AvgPool1dValidGradientViaMovingAvg) {
  // MovingAvg1d is ReplicatePad + AvgPool1dValid; an even kernel makes the
  // pad asymmetric, so the AvgPool1dValid overlap-accumulating backward is
  // exercised on a window layout the odd-kernel test above cannot reach.
  Rng rng(21);
  Tensor x = Tensor::Randn({2, 8, 3}, &rng);
  auto fn = [](const std::vector<Tensor>& in) {
    return Sum(Square(MovingAvg1d(in[0], 4)));
  };
  auto r = CheckGradients(fn, {x});
  EXPECT_TRUE(r.ok) << r.message;
}

TEST(ScalarGradTest, AddScalarAndMulScalarGradient) {
  Rng rng(22);
  Tensor x = Tensor::Randn({3, 4}, &rng);
  auto fn = [](const std::vector<Tensor>& in) {
    // AddScalar then MulScalar: d/dx of 2*(x + 1.5) must be exactly 2.
    return Sum(Square(MulScalar(AddScalar(in[0], 1.5f), 2.0f)));
  };
  auto r = CheckGradients(fn, {x});
  EXPECT_TRUE(r.ok) << r.message;
}

TEST(MixedGradTest, CompositeExpressionGradient) {
  Rng rng(19);
  Tensor a = Tensor::Randn({3, 4}, &rng);
  Tensor b = Tensor::Randn({4, 2}, &rng);
  auto fn = [](const std::vector<Tensor>& in) {
    Tensor h = Tanh(MatMul(in[0], in[1]));
    Tensor s = Softmax(h, 1);
    return Mean(Square(s - 0.5f));
  };
  auto r = CheckGradients(fn, {a, b}, 1e-2f, 3e-2f);
  EXPECT_TRUE(r.ok) << r.message;
}

TEST(MixedGradTest, LayerNormStyleExpression) {
  Rng rng(20);
  Tensor x = Tensor::Randn({2, 5}, &rng);
  auto fn = [](const std::vector<Tensor>& in) {
    Tensor mu = Mean(in[0], {1}, true);
    Tensor var = Variance(in[0], {1}, true);
    Tensor norm = Div(Sub(in[0], mu), Sqrt(var + 1e-5f));
    return Sum(Square(norm + 0.1f));
  };
  auto r = CheckGradients(fn, {x}, 1e-2f, 5e-2f);
  EXPECT_TRUE(r.ok) << r.message;
}

}  // namespace
}  // namespace ts3net
