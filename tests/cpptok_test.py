#!/usr/bin/env python3
"""Unit tests for tools/ts3lint/cpptok.py (the ts3lint C++ tokenizer).

Each case is a small C++ snippet with the token stream (or scrub output)
the tokenizer must produce; the cases concentrate on the constructs a
regex-only scanner gets wrong -- raw strings, literal prefixes, nested
templates, comments containing code-like text -- because those are exactly
what the TL012-TL014 concurrency checks lean on the tokenizer for.

Run: python3 tests/cpptok_test.py  (registered as the cpptok_tokenizer
ctest; exit 0 on success, 1 with a report on failure).
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                os.pardir, "tools", "ts3lint"))

import cpptok

FAILURES = []


def check(name, cond, detail=""):
    if not cond:
        FAILURES.append("%s: %s" % (name, detail))


def kinds_and_texts(code):
    return [(t.kind, t.text) for t in cpptok.tokenize(code)]


def test_comments_containing_mutex():
    # Code-like text in comments must come back as comment tokens, never
    # as ident/punct -- a comment mentioning std::mutex must not register
    # as a mutex use.
    code = ("// grabs the std::mutex via MutexLock lock(&mu_);\n"
            "int x; /* seq.store(1, std::memory_order_relaxed) */\n")
    toks = cpptok.tokenize(code)
    idents = [t.text for t in toks if t.kind == "ident"]
    check("comment-mutex", idents == ["int", "x"],
          "identifiers leaked out of comments: %r" % idents)
    comments = [t for t in toks if t.kind == "comment"]
    check("comment-count", len(comments) == 2, "%d comments" % len(comments))
    check("comment-lines", [c.line for c in comments] == [1, 2],
          "comment lines %r" % [c.line for c in comments])


def test_raw_strings():
    code = 'auto s = R"doc(std::mutex m; TS3_LOG(x); ")" )doc";\nint y;\n'
    toks = cpptok.tokenize(code)
    strings = [t for t in toks if t.kind == "string"]
    check("raw-one-string", len(strings) == 1,
          "expected 1 string token, got %r" % [t.text for t in strings])
    check("raw-contents", 'TS3_LOG' in strings[0].text and
          strings[0].text.endswith(')doc"'), repr(strings[0].text))
    idents = [t.text for t in toks if t.kind == "ident"]
    check("raw-idents", idents == ["auto", "s", "int", "y"], repr(idents))
    # Multi-line raw strings must keep later line numbers accurate.
    code2 = 'auto s = R"(line one\nline two)";\nint z;\n'
    z = [t for t in cpptok.tokenize(code2) if t.text == "z"][0]
    check("raw-multiline-line", z.line == 3, "z on line %d" % z.line)


def test_literal_prefixes():
    code = 'auto a = u8"x"; auto b = L\'c\'; auto c = uR"(y)";\n'
    toks = cpptok.tokenize(code)
    lits = [(t.kind, t.text) for t in toks if t.kind in ("string", "char")]
    check("prefixes", lits == [("string", 'u8"x"'), ("char", "L'c'"),
                               ("string", 'uR"(y)"')], repr(lits))


def test_nested_templates():
    # '>>' closing two template levels is one token; the concurrency
    # engine's template-depth walker compensates, but the tokenizer must
    # be deterministic about it.
    code = "std::map<std::string, std::vector<std::pair<int, int>>> m_;\n"
    toks = kinds_and_texts(code)
    check("nested-close", ("punct", ">>") in toks and ("punct", ">") in toks,
          repr([t for t in toks if t[0] == "punct"]))
    idents = [txt for k, txt in toks if k == "ident"]
    check("nested-idents", idents[-1] == "m_", repr(idents))


def test_operators_longest_match():
    code = "a <<= b; c->d; e::f; g->*h; i >>= j;\n"
    puncts = [txt for k, txt in kinds_and_texts(code) if k == "punct"]
    for op in ("<<=", "->", "::", "->*", ">>="):
        check("op-%s" % op, op in puncts, repr(puncts))


def test_numbers():
    code = "double d = 1e+9; int h = 0xFF'00; float f = 0x1p-3;\n"
    nums = [txt for k, txt in kinds_and_texts(code) if k == "number"]
    check("numbers", nums == ["1e+9", "0xFF'00", "0x1p-3"], repr(nums))


def test_stray_apostrophe():
    # An apostrophe that is not a char literal (here: unterminated on the
    # line) degrades to punct instead of swallowing the rest of the file.
    code = "int a; // it's fine\nint dont = 1; char c = 'x';\n"
    toks = cpptok.tokenize(code)
    idents = [t.text for t in toks if t.kind == "ident"]
    check("apostrophe-comment", "dont" in idents and "fine" not in idents,
          repr(idents))
    chars = [t.text for t in toks if t.kind == "char"]
    check("apostrophe-char", chars == ["'x'"], repr(chars))


def test_scrub_preserves_offsets():
    code = ('int a; // mutex here\n'
            'const char* s = "std::thread t;";\n'
            'int b;\n')
    for keep in (False, True):
        scrubbed = cpptok.scrub(code, keep_strings=keep)
        check("scrub-len-%s" % keep, len(scrubbed) == len(code),
              "length changed")
        check("scrub-lines-%s" % keep,
              scrubbed.count("\n") == code.count("\n"), "newlines changed")
        check("scrub-comment-%s" % keep, "mutex" not in scrubbed,
              "comment text survived")
    check("scrub-string-kept", "std::thread" in cpptok.scrub(code, True),
          "keep_strings=True lost string contents")
    check("scrub-string-blanked",
          "std::thread" not in cpptok.scrub(code, False),
          "keep_strings=False kept string contents")


def test_scrub_raw_string():
    code = 'auto s = R"(std::mutex m;)"; int tail;\n'
    scrubbed = cpptok.scrub(code, keep_strings=False)
    check("scrub-raw", "mutex" not in scrubbed and "tail" in scrubbed,
          repr(scrubbed))


def test_unterminated_block_comment():
    try:
        cpptok.tokenize("int a; /* never closed\nint b;")
    except cpptok.TokenizeError as e:
        check("unterminated-line", e.line == 1, "line %d" % e.line)
    else:
        check("unterminated-raises", False, "no TokenizeError")
    # scrub falls back to the unmodified text rather than raising.
    text = "int a; /* never closed"
    check("scrub-fallback", cpptok.scrub(text, False) == text, "no fallback")


def main():
    for name, fn in sorted(globals().items()):
        if name.startswith("test_") and callable(fn):
            fn()
    if FAILURES:
        for f in FAILURES:
            print("FAIL %s" % f)
        print("cpptok: %d check(s) failed" % len(FAILURES))
        return 1
    print("cpptok: all tokenizer checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
