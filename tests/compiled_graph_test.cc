// Differential-replay harness for the compiled inference graph
// (serve/compiled_graph.h): every model family is run through both the
// dynamic Predict and the compiled Predict and the outputs must match
// bitwise — not approximately — across batch sizes. The same suite runs
// under ASan and TSan in CI (see .github/workflows/ci.yml), so the replay
// kernels and the arena planner are exercised with full instrumentation.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/obs/json.h"
#include "common/obs/metrics.h"
#include "common/random.h"
#include "models/registry.h"
#include "serve/batcher.h"
#include "serve/compiled_graph.h"
#include "serve/snapshot.h"
#include "serve/step_profiler.h"
#include "tensor/autograd_mode.h"
#include "tensor/ops.h"

namespace ts3net {
namespace serve {
namespace {

constexpr int kMaxBatch = 4;

/// Small but fully populated config accepted by every registered family.
models::ModelConfig TinyConfig() {
  models::ModelConfig c;
  c.seq_len = 24;
  c.pred_len = 12;
  c.channels = 3;
  c.d_model = 8;
  c.d_ff = 8;
  c.num_layers = 2;
  c.num_heads = 2;
  c.num_kernels = 2;
  c.top_k_periods = 2;
  c.num_modes = 6;
  c.patch_len = 4;
  c.lambda = 4;
  c.dropout = 0.0f;
  c.moving_avg = 7;
  return c;
}

std::shared_ptr<nn::Module> MakeNamedModel(const std::string& name,
                                           uint64_t seed,
                                           const models::ModelConfig& cfg) {
  Rng rng(seed);
  auto model = models::CreateModel(name, cfg, &rng);
  EXPECT_TRUE(model.ok()) << name << ": " << model.status().message();
  return model.value();
}

/// Deterministic [B, T, C] batch; values depend on `tag` and the position so
/// no two batches (or samples) look alike.
Tensor MakeBatch(const models::ModelConfig& cfg, int64_t batch, int tag) {
  std::vector<float> values(
      static_cast<size_t>(batch * cfg.seq_len * cfg.channels));
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = std::sin(0.13f * static_cast<float>(i) +
                         0.7f * static_cast<float>(tag)) +
                0.05f * std::cos(0.029f * static_cast<float>(i));
  }
  return Tensor::FromData(std::move(values),
                          {batch, cfg.seq_len, cfg.channels});
}

bool BitwiseEqual(const Tensor& a, const Tensor& b) {
  if (!a.defined() || !b.defined() || a.shape() != b.shape()) return false;
  return std::memcmp(a.data(), b.data(),
                     static_cast<size_t>(a.numel()) * sizeof(float)) == 0;
}

/// Two snapshots of the same trained weights: the reference one pinned to
/// the dynamic forward, the candidate one with compilation on.
struct SnapshotPair {
  std::shared_ptr<const ModelSnapshot> dynamic;
  std::shared_ptr<const ModelSnapshot> compiled;
};

SnapshotPair MakePair(const std::string& name,
                      const models::ModelConfig& cfg,
                      SnapshotOptions compiled_options = {}) {
  auto source = MakeNamedModel(name, /*seed=*/3, cfg);
  SnapshotOptions dynamic_options;
  dynamic_options.compile = false;
  compiled_options.compile = true;
  auto dyn = ModelSnapshot::Capture(*source, MakeNamedModel(name, 90, cfg),
                                    dynamic_options);
  auto comp = ModelSnapshot::Capture(*source, MakeNamedModel(name, 91, cfg),
                                     compiled_options);
  EXPECT_TRUE(dyn.ok()) << dyn.status().message();
  EXPECT_TRUE(comp.ok()) << comp.status().message();
  return {dyn.value(), comp.value()};
}

// ---------------------------------------------------------------------------
// Differential replay across every model family
// ---------------------------------------------------------------------------

std::vector<std::string> DifferentialModelNames() {
  std::vector<std::string> names = models::AllModelNames();
  // Extra baselines and the data-independent TS3Net ablation, so both the
  // compiled path and the deterministic-fallback path see varied graphs.
  for (const char* extra : {"LSTM", "TCN", "SCINet", "TSD-CNN"}) {
    names.push_back(extra);
  }
  return names;
}

class DifferentialReplayTest : public ::testing::TestWithParam<std::string> {};

TEST_P(DifferentialReplayTest, CompiledPredictMatchesDynamicBitwise) {
  const std::string name = GetParam();
  models::ModelConfig cfg = TinyConfig();
  SnapshotPair pair = MakePair(name, cfg);

  for (int64_t batch = 1; batch <= kMaxBatch; ++batch) {
    Tensor x = MakeBatch(cfg, batch, static_cast<int>(batch) * 17 + 1);
    Tensor want = pair.dynamic->Predict(x);
    // Round 0 compiles (or rejects) the shape and serves it; round 1 is the
    // steady-state replay against reused arena memory.
    for (int round = 0; round < 2; ++round) {
      Tensor got = pair.compiled->Predict(x);
      ASSERT_TRUE(BitwiseEqual(want, got))
          << name << ": compiled Predict diverges at batch " << batch
          << " round " << round;
    }
  }
  // Every shape either compiled or was deterministically rejected at
  // compile time — never a silent half-state.
  EXPECT_EQ(pair.compiled->num_compiled_shapes() +
                pair.compiled->num_rejected_shapes(),
            kMaxBatch)
      << name;
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, DifferentialReplayTest,
    ::testing::ValuesIn(DifferentialModelNames()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string s = info.param;
      std::replace_if(
          s.begin(), s.end(), [](char c) { return !std::isalnum(c); }, '_');
      return s;
    });

// ---------------------------------------------------------------------------
// Which side of the compile/fallback split each family lands on
// ---------------------------------------------------------------------------

TEST(CompiledSnapshotTest, ShapeStaticModelsCompileAndCountPredicts) {
  auto* registry = obs::MetricsRegistry::Global();
  for (const char* name : {"DLinear", "LightTS", "LSTM"}) {
    models::ModelConfig cfg = TinyConfig();
    SnapshotPair pair = MakePair(name, cfg);
    Tensor x = MakeBatch(cfg, 2, 5);
    const int64_t compiled_before =
        registry->counter("serve/compiled_predicts")->value();
    const int64_t compiles_before =
        registry->counter("serve/graph_compiles")->value();
    Tensor want = pair.dynamic->Predict(x);
    for (int i = 0; i < 3; ++i) {
      EXPECT_TRUE(BitwiseEqual(want, pair.compiled->Predict(x))) << name;
    }
    EXPECT_EQ(pair.compiled->num_compiled_shapes(), 1) << name;
    EXPECT_EQ(pair.compiled->num_rejected_shapes(), 0) << name;
    EXPECT_EQ(
        registry->counter("serve/compiled_predicts")->value() - compiled_before,
        3)
        << name;
    EXPECT_EQ(
        registry->counter("serve/graph_compiles")->value() - compiles_before, 1)
        << name;
    EXPECT_GT(registry->gauge("serve/arena_bytes")->value(), 0.0) << name;
  }
}

TEST(CompiledSnapshotTest, DataDependentModelsRejectOnceAndFallBack) {
  // TimesNet and TS3Net pick top-k periods from tensor values (Detach before
  // data-driven control flow), so their graphs must not be compiled; the
  // rejection is remembered per shape and every Predict stays dynamic.
  auto* registry = obs::MetricsRegistry::Global();
  for (const char* name : {"TimesNet", "TS3Net"}) {
    models::ModelConfig cfg = TinyConfig();
    SnapshotPair pair = MakePair(name, cfg);
    Tensor x = MakeBatch(cfg, 2, 9);
    const int64_t rejected_before =
        registry->counter("serve/compile_rejected")->value();
    const int64_t fallback_before =
        registry->counter("serve/fallback_predicts")->value();
    Tensor want = pair.dynamic->Predict(x);
    for (int i = 0; i < 2; ++i) {
      EXPECT_TRUE(BitwiseEqual(want, pair.compiled->Predict(x))) << name;
    }
    EXPECT_EQ(pair.compiled->num_compiled_shapes(), 0) << name;
    EXPECT_EQ(pair.compiled->num_rejected_shapes(), 1) << name;
    // Rejected once (the verdict is cached), fell back on every Predict.
    EXPECT_EQ(
        registry->counter("serve/compile_rejected")->value() - rejected_before,
        1)
        << name;
    EXPECT_EQ(
        registry->counter("serve/fallback_predicts")->value() - fallback_before,
        2)
        << name;
  }
}

// ---------------------------------------------------------------------------
// Zero-allocation steady state
// ---------------------------------------------------------------------------

TEST(CompiledSnapshotTest, SteadyStatePredictAllocatesNoTensors) {
  models::ModelConfig cfg = TinyConfig();
  SnapshotPair pair = MakePair("DLinear", cfg);
  auto* gauge =
      obs::MetricsRegistry::Global()->gauge("serve/allocs_per_predict");
  Tensor x = MakeBatch(cfg, 2, 3);

  Tensor out = pair.compiled->Predict(x);  // compiles + first replay
  ASSERT_EQ(pair.compiled->num_compiled_shapes(), 1);

  // While the caller still holds the previous output, the one-deep pool
  // misses and exactly the output tensor is allocated.
  Tensor held = pair.compiled->Predict(x);
  EXPECT_EQ(gauge->value(), 1.0);

  // Once the caller releases its result before the next call, steady-state
  // Predict runs with zero tensor allocations.
  for (int i = 0; i < 3; ++i) {
    held = Tensor();  // release before predicting so the pool can recycle
    out = Tensor();
    out = pair.compiled->Predict(x);
    EXPECT_EQ(gauge->value(), 0.0) << "iteration " << i;
  }
  // The dynamic path for comparison: allocates one tensor per op.
  Tensor want = pair.dynamic->Predict(x);
  EXPECT_GT(gauge->value(), 1.0);
  EXPECT_TRUE(BitwiseEqual(want, out));
}

// ---------------------------------------------------------------------------
// Property test: randomized shapes exercise the shape-mismatch fallback
// ---------------------------------------------------------------------------

TEST(CompiledFallbackPropertyTest, RandomBatchesBeyondCacheFallBackBitwise) {
  auto* registry = obs::MetricsRegistry::Global();
  for (int64_t channels : {1, 3}) {
    models::ModelConfig cfg = TinyConfig();
    cfg.channels = channels;
    SnapshotOptions opt;
    opt.max_compiled_shapes = 1;  // only the first shape gets a graph
    SnapshotPair pair = MakePair("DLinear", cfg, opt);

    Tensor first = MakeBatch(cfg, 1, 0);
    ASSERT_TRUE(
        BitwiseEqual(pair.dynamic->Predict(first),
                     pair.compiled->Predict(first)));
    ASSERT_EQ(pair.compiled->num_compiled_shapes(), 1);

    Rng rng(0xC0FFEE + static_cast<uint64_t>(channels));
    for (int iter = 0; iter < 8; ++iter) {
      const int64_t batch =
          2 + static_cast<int64_t>(rng.UniformInt(kMaxBatch));
      Tensor x = MakeBatch(cfg, batch, 100 + iter);
      const int64_t fallback_before =
          registry->counter("serve/fallback_predicts")->value();
      Tensor want = pair.dynamic->Predict(x);
      Tensor got = pair.compiled->Predict(x);
      EXPECT_TRUE(BitwiseEqual(want, got))
          << "channels " << channels << " batch " << batch;
      // The cache is full, so the new shape runs dynamic and says so.
      EXPECT_EQ(registry->counter("serve/fallback_predicts")->value() -
                    fallback_before,
                1);
      // A fresh dynamic snapshot of the same weights agrees too: fallback
      // outputs are not some third numerical path.
      EXPECT_TRUE(BitwiseEqual(want, MakePair("DLinear", cfg)
                                         .dynamic->Predict(x)));
    }
    EXPECT_EQ(pair.compiled->num_compiled_shapes(), 1);
  }
}

// ---------------------------------------------------------------------------
// CompiledGraph unit surface
// ---------------------------------------------------------------------------

TEST(CompiledGraphTest, CompileReportsPlanAndReplaysBitwise) {
  models::ModelConfig cfg = TinyConfig();
  auto model = MakeNamedModel("DLinear", /*seed=*/5, cfg);
  model->SetTraining(false);
  for (Tensor& p : model->Parameters()) p.set_requires_grad(false);

  Tensor x = MakeBatch(cfg, 2, 7);
  auto graph = CompiledGraph::Compile(model.get(), x);
  ASSERT_TRUE(graph.ok()) << graph.status().message();

  const CompiledGraph::Stats& stats = graph.value()->stats();
  EXPECT_GT(stats.num_traced_ops, 0);
  EXPECT_GT(stats.num_steps, 0);
  EXPECT_LE(stats.num_steps, stats.num_traced_ops);
  EXPECT_EQ(stats.num_fused, stats.num_traced_ops - stats.num_steps);
  EXPECT_GT(stats.arena_bytes, 0);
  EXPECT_EQ(graph.value()->input_shape(), x.shape());
  EXPECT_EQ(graph.value()->output_shape(),
            Shape({2, cfg.pred_len, cfg.channels}));

  Tensor want;
  {
    NoGradGuard no_grad;
    want = model->Forward(x).Detach();
  }
  Tensor got1 = graph.value()->Run(x);
  Tensor got2 = graph.value()->Run(x);
  EXPECT_TRUE(BitwiseEqual(want, got1));
  EXPECT_TRUE(BitwiseEqual(want, got2));
}

TEST(CompiledGraphTest, RejectsDataDependentForward) {
  models::ModelConfig cfg = TinyConfig();
  auto model = MakeNamedModel("TimesNet", /*seed=*/6, cfg);
  model->SetTraining(false);
  for (Tensor& p : model->Parameters()) p.set_requires_grad(false);

  auto graph = CompiledGraph::Compile(model.get(), MakeBatch(cfg, 1, 1));
  ASSERT_FALSE(graph.ok());
  EXPECT_EQ(graph.status().code(), StatusCode::kUnimplemented);
}

// ---------------------------------------------------------------------------
// Step profiler: per-step timing inside CompiledGraph::Run, aggregated per
// op kind (serve/step_profiler.h)
// ---------------------------------------------------------------------------

TEST(StepProfilerTest, MergeSumsByKindAndComputesShares) {
  std::vector<OpKindProfile> raw;
  raw.push_back({"MatMul", 1, 10, 600, 0.0});
  raw.push_back({"Add", 1, 10, 100, 0.0});
  raw.push_back({"MatMul", 2, 20, 200, 0.0});
  raw.push_back({"Tanh", 1, 10, 100, 0.0});
  std::vector<OpKindProfile> merged = MergeOpKindProfiles(raw);
  ASSERT_EQ(merged.size(), 3u);
  // Sorted by total time descending: MatMul (800) first.
  EXPECT_EQ(merged[0].kind, "MatMul");
  EXPECT_EQ(merged[0].steps, 3);
  EXPECT_EQ(merged[0].calls, 30);
  EXPECT_EQ(merged[0].total_ns, 800);
  EXPECT_DOUBLE_EQ(merged[0].share, 0.8);
  double share_sum = 0.0;
  for (const OpKindProfile& p : merged) share_sum += p.share;
  EXPECT_DOUBLE_EQ(share_sum, 1.0);
}

TEST(StepProfilerTest, DisabledByDefaultReportsNothing) {
  ASSERT_FALSE(StepProfilerEnabled());
  models::ModelConfig cfg = TinyConfig();
  SnapshotPair pair = MakePair("LSTM", cfg);
  Tensor x = MakeBatch(cfg, 2, 11);
  pair.compiled->Predict(x);
  pair.compiled->Predict(x);
  EXPECT_TRUE(pair.compiled->AggregatedStepProfile().empty())
      << "profiler off must record no per-step timings";
}

TEST(StepProfilerTest, LstmProfileNamesOpKindsAndSharesSumToOne) {
  models::ModelConfig cfg = TinyConfig();
  SnapshotPair pair = MakePair("LSTM", cfg);
  Tensor x = MakeBatch(cfg, 2, 12);
  pair.compiled->Predict(x);  // compile before enabling: timings exclude bake

  SetStepProfilerEnabled(true);
  Tensor got = pair.compiled->Predict(x);
  Tensor want = pair.dynamic->Predict(x);
  SetStepProfilerEnabled(false);

  EXPECT_TRUE(BitwiseEqual(want, got))
      << "profiling must not perturb the replayed numerics";

  std::vector<OpKindProfile> profile = pair.compiled->AggregatedStepProfile();
  ASSERT_FALSE(profile.empty());
  bool has_matmul = false, has_gate = false;
  double share_sum = 0.0;
  int64_t prev_total = std::numeric_limits<int64_t>::max();
  for (const OpKindProfile& p : profile) {
    EXPECT_GT(p.steps, 0) << p.kind;
    EXPECT_GT(p.calls, 0) << p.kind;
    EXPECT_GE(p.share, 0.0) << p.kind;
    EXPECT_LE(p.total_ns, prev_total) << "profile must be sorted by time";
    prev_total = p.total_ns;
    share_sum += p.share;
    if (p.kind == "MatMul") has_matmul = true;
    if (p.kind == "Sigmoid" || p.kind == "Tanh") has_gate = true;
  }
  EXPECT_TRUE(has_matmul) << "an LSTM profile without MatMul is wrong";
  EXPECT_TRUE(has_gate) << "an LSTM profile without gate activations is wrong";
  EXPECT_NEAR(share_sum, 1.0, 1e-9);

  const std::string json = pair.compiled->StepProfileJson();
  std::string error;
  EXPECT_TRUE(obs::JsonValidate(json, &error)) << error;
  EXPECT_NE(json.find("MatMul"), std::string::npos);
}

TEST(StepProfilerTest, SteadyStateStaysAllocationFreeWithProfilerOn) {
  models::ModelConfig cfg = TinyConfig();
  SnapshotPair pair = MakePair("DLinear", cfg);
  auto* gauge =
      obs::MetricsRegistry::Global()->gauge("serve/allocs_per_predict");
  Tensor x = MakeBatch(cfg, 2, 13);
  Tensor out = pair.compiled->Predict(x);  // compile + first replay

  SetStepProfilerEnabled(true);
  for (int i = 0; i < 3; ++i) {
    out = Tensor();  // release so the output pool can recycle
    out = pair.compiled->Predict(x);
    EXPECT_EQ(gauge->value(), 0.0)
        << "step timing must be zero-alloc, iteration " << i;
  }
  SetStepProfilerEnabled(false);
  EXPECT_FALSE(pair.compiled->AggregatedStepProfile().empty());
}

// ---------------------------------------------------------------------------
// Concurrency (the TSan target): compiled predicts under contention
// ---------------------------------------------------------------------------

TEST(CompiledGraphThreadingTest, ConcurrentCompiledPredictsStayBitwise) {
  models::ModelConfig cfg = TinyConfig();
  SnapshotPair pair = MakePair("DLinear", cfg);

  // Reference answers per batch size, computed serially on the dynamic path.
  std::vector<Tensor> want(kMaxBatch + 1);
  for (int64_t b = 1; b <= kMaxBatch; ++b) {
    want[static_cast<size_t>(b)] =
        pair.dynamic->Predict(MakeBatch(cfg, b, static_cast<int>(b)));
  }

  constexpr int kThreads = 4;
  constexpr int kItersPerThread = 12;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kItersPerThread; ++i) {
        const int64_t b = (t + i) % kMaxBatch + 1;
        Tensor got =
            pair.compiled->Predict(MakeBatch(cfg, b, static_cast<int>(b)));
        EXPECT_TRUE(BitwiseEqual(want[static_cast<size_t>(b)], got))
            << "thread " << t << " iteration " << i;
      }
    });
  }
  for (std::thread& t : threads) t.join();
}

TEST(CompiledGraphThreadingTest, MicroBatcherRidesTheCompiledPath) {
  models::ModelConfig cfg = TinyConfig();
  SnapshotPair pair = MakePair("DLinear", cfg);

  MicroBatcherOptions opt;
  opt.max_batch = 3;
  opt.max_wait_us = 100;
  MicroBatcher batcher(pair.compiled, opt);

  constexpr int kClients = 3;
  constexpr int kRequests = 6;
  std::vector<Tensor> got(kClients * kRequests);
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int r = 0; r < kRequests; ++r) {
        const int i = c * kRequests + r;
        Tensor window = Reshape(MakeBatch(cfg, 1, i),
                                {cfg.seq_len, cfg.channels});
        auto result = batcher.Predict(window);
        ASSERT_TRUE(result.ok()) << result.status().message();
        got[static_cast<size_t>(i)] = result.value();
      }
    });
  }
  for (std::thread& t : clients) t.join();

  for (int i = 0; i < kClients * kRequests; ++i) {
    Tensor want = pair.dynamic->Predict(MakeBatch(cfg, 1, i));
    ASSERT_TRUE(got[static_cast<size_t>(i)].defined());
    EXPECT_EQ(std::memcmp(got[static_cast<size_t>(i)].data(), want.data(),
                          static_cast<size_t>(want.numel()) * sizeof(float)),
              0)
        << "request " << i;
  }
}

}  // namespace
}  // namespace serve
}  // namespace ts3net
