// Concurrency regression tests for common/transform_cache and the
// threadpool error path. These pin the fixes that came out of the
// thread-safety annotation sweep (DESIGN.md §9, "Concurrency contracts"):
//
//   * TransformCache must never hold its map mutex across a builder: one
//     slow plan build must not serialize lookups of unrelated keys. The
//     per-slot std::once_flag design makes distinct keys build fully in
//     parallel, which DistinctKeysBuildInParallel proves with a rendezvous
//     that would deadlock-and-time-out under a build-under-lock design.
//   * Concurrent requests for the *same* key still build exactly once.
//   * The byte accounting (re-locked after the build) stays exact when many
//     builders finish at once.
//   * ParallelFor's first-exception capture is synchronized (the old code
//     read the slot outside the error mutex while workers wrote it).
//   * ThreadPool::GlobalNumThreads is lock-protected and safe to read while
//     another thread reconfigures the pool size.
//
// All of these run under the TSan tier (-DTS3_SANITIZE=thread) like every
// other test, which is what actually gates the data-race half of the
// claims; the assertions here gate the behavioral half.

#include "common/transform_cache.h"

#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "common/threadpool.h"

namespace ts3net {
namespace {

using Clock = std::chrono::steady_clock;

// Spins until `cond` or the deadline; true iff `cond` became true. Tests
// use generous deadlines: the pass path completes in microseconds, the
// deadline only bounds the *failure* mode (a regression re-serializing the
// builders must fail the assertion, not hang the suite).
template <typename Cond>
bool SpinUntil(Cond cond, std::chrono::seconds deadline) {
  const auto until = Clock::now() + deadline;
  while (!cond()) {
    if (Clock::now() >= until) return false;
    std::this_thread::yield();
  }
  return true;
}

TEST(TransformCacheConcurrency, DistinctKeysBuildInParallel) {
  TransformCache::Global()->Clear();
  ThreadPool pool(2);  // caller + 1 worker: two truly concurrent chunks
  std::atomic<int> builders_started{0};
  std::atomic<int> overlapped{0};

  pool.ParallelFor(0, 2, 1, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      const std::string key = "test/parallel/" + std::to_string(i);
      TransformCache::Global()->GetOrCreate(key, [&]() {
        builders_started.fetch_add(1, std::memory_order_relaxed);
        // Rendezvous: wait (bounded) for the *other* builder to start. If
        // GetOrCreate held the cache mutex across builds, the second
        // builder could not start until this one returned and the wait
        // would time out.
        if (SpinUntil(
                [&] {
                  return builders_started.load(std::memory_order_relaxed) ==
                         2;
                },
                std::chrono::seconds(10))) {
          overlapped.fetch_add(1, std::memory_order_relaxed);
        }
        return TransformCache::Entry{std::make_shared<int64_t>(i), 8};
      });
    }
  });

  EXPECT_EQ(builders_started.load(), 2);
  EXPECT_EQ(overlapped.load(), 2)
      << "builders for distinct keys did not overlap: the cache mutex is "
         "being held across a build";
  TransformCache::Global()->Clear();
}

TEST(TransformCacheConcurrency, SameKeyBuildsExactlyOnce) {
  TransformCache::Global()->Clear();
  constexpr int kThreads = 4;
  ThreadPool pool(kThreads);
  std::atomic<int> builds{0};
  std::shared_ptr<const int64_t> seen[kThreads] = {};

  pool.ParallelFor(0, kThreads, 1, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      seen[i] = TransformCache::Global()->Get<int64_t>("test/once", [&]() {
        builds.fetch_add(1, std::memory_order_relaxed);
        // Widen the race window: late arrivals must block in call_once,
        // not re-build.
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        return TransformCache::Entry{std::make_shared<int64_t>(42), 16};
      });
    }
  });

  EXPECT_EQ(builds.load(), 1);
  for (int i = 0; i < kThreads; ++i) {
    ASSERT_NE(seen[i], nullptr);
    EXPECT_EQ(*seen[i], 42);
    EXPECT_EQ(seen[i].get(), seen[0].get()) << "thread " << i
                                            << " got a different instance";
  }
  EXPECT_EQ(TransformCache::Global()->size(), 1);
  EXPECT_EQ(TransformCache::Global()->bytes(), 16);
  TransformCache::Global()->Clear();
}

TEST(TransformCacheConcurrency, ByteAccountingExactUnderConcurrentBuilds) {
  TransformCache::Global()->Clear();
  constexpr int kKeys = 32;
  ThreadPool pool(4);
  pool.ParallelFor(0, kKeys, 1, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      const std::string key = "test/bytes/" + std::to_string(i);
      TransformCache::Global()->GetOrCreate(key, [i]() {
        return TransformCache::Entry{std::make_shared<int64_t>(i), i + 1};
      });
    }
  });
  EXPECT_EQ(TransformCache::Global()->size(), kKeys);
  // sum of (i + 1) for i in [0, kKeys)
  EXPECT_EQ(TransformCache::Global()->bytes(), kKeys * (kKeys + 1) / 2);
  TransformCache::Global()->Clear();
  EXPECT_EQ(TransformCache::Global()->bytes(), 0);
}

TEST(ThreadPoolErrorPath, ConcurrentThrowsPropagateOneException) {
  // Every chunk throws at once; the pool must capture one exception
  // (synchronized under its error mutex — TSan checks that) and rethrow it
  // after the loop drains, leaving the pool reusable.
  ThreadPool pool(4);
  EXPECT_THROW(pool.ParallelFor(0, 64, 1,
                                [](int64_t begin, int64_t) {
                                  throw std::runtime_error(
                                      "chunk " + std::to_string(begin));
                                }),
               std::runtime_error);
  std::atomic<int64_t> sum{0};
  pool.ParallelFor(0, 64, 1, [&](int64_t begin, int64_t end) {
    sum.fetch_add(end - begin, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 64);
}

TEST(ThreadPoolGlobalConfig, NumThreadsReadableWhileReconfiguring) {
  // GlobalNumThreads() may race with SetGlobalNumThreads in tools that
  // report status; the value is mutex-protected, so concurrent reads must
  // be clean (TSan) and always observe one of the configured values.
  ThreadPool reader_pool(3);
  std::atomic<bool> stop{false};
  std::atomic<int> bad_reads{0};
  // One writer (this thread) toggles while reader chunks poll. The reader
  // pool is local, so no chunk ever touches the global pool itself.
  std::atomic<int> readers_running{0};
  reader_pool.ParallelFor(0, 2, 1, [&](int64_t begin, int64_t) {
    if (begin == 0) {
      // Writer chunk.
      readers_running.fetch_add(1, std::memory_order_relaxed);
      for (int i = 0; i < 200; ++i) {
        ThreadPool::SetGlobalNumThreads(1 + (i % 2));
      }
      stop.store(true, std::memory_order_relaxed);
    } else {
      readers_running.fetch_add(1, std::memory_order_relaxed);
      while (!stop.load(std::memory_order_relaxed)) {
        const int n = ThreadPool::GlobalNumThreads();
        if (n != 1 && n != 2) bad_reads.fetch_add(1);
        std::this_thread::yield();
      }
    }
  });
  EXPECT_EQ(readers_running.load(), 2);
  EXPECT_EQ(bad_reads.load(), 0);
  ThreadPool::SetGlobalNumThreads(1);  // restore the suite default
}

}  // namespace
}  // namespace ts3net
