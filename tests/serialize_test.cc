#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <vector>

#include "core/ts3net.h"
#include "models/registry.h"
#include "nn/layers.h"
#include "nn/serialize.h"
#include "tensor/ops.h"

namespace ts3net {
namespace nn {
namespace {

std::string TempPath(const char* tag) {
  return std::string("/tmp/ts3net_ckpt_") + tag + ".bin";
}

TEST(SerializeTest, RoundTripRestoresWeights) {
  Rng rng(1);
  Mlp original(4, 8, 2, &rng);
  const std::string path = TempPath("roundtrip");
  ASSERT_TRUE(SaveParameters(original, path).ok());

  Rng rng2(999);  // different init
  Mlp restored(4, 8, 2, &rng2);
  Tensor x = Tensor::Randn({3, 4}, &rng);
  Tensor before = restored.Forward(x);
  ASSERT_TRUE(LoadParameters(&restored, path).ok());
  Tensor after = restored.Forward(x);
  Tensor expect = original.Forward(x);
  EXPECT_FALSE(AllClose(before, expect));
  EXPECT_TRUE(AllClose(after, expect));
  std::remove(path.c_str());
}

TEST(SerializeTest, FullTS3NetRoundTrip) {
  core::TS3NetOptions opt;
  opt.seq_len = 24;
  opt.pred_len = 12;
  opt.channels = 3;
  opt.d_model = 8;
  opt.d_ff = 8;
  opt.lambda = 4;
  opt.dropout = 0.0f;
  Rng r1(2), r2(3);
  core::TS3Net a(opt, &r1), b(opt, &r2);
  a.SetTraining(false);
  b.SetTraining(false);

  const std::string path = TempPath("ts3net");
  ASSERT_TRUE(SaveParameters(a, path).ok());
  ASSERT_TRUE(LoadParameters(&b, path).ok());
  Rng xr(4);
  Tensor x = Tensor::Randn({2, 24, 3}, &xr);
  EXPECT_TRUE(AllClose(a.Forward(x), b.Forward(x), 1e-5f, 1e-6f));
  std::remove(path.c_str());
}

TEST(SerializeTest, MissingFileIsIOError) {
  Rng rng(5);
  Mlp m(2, 2, 2, &rng);
  Status st = LoadParameters(&m, "/tmp/no_such_ts3net_ckpt.bin");
  EXPECT_EQ(st.code(), StatusCode::kIOError);
}

TEST(SerializeTest, WrongMagicRejected) {
  const std::string path = TempPath("magic");
  FILE* f = fopen(path.c_str(), "wb");
  fwrite("NOTACKPT________", 1, 16, f);
  fclose(f);
  Rng rng(6);
  Mlp m(2, 2, 2, &rng);
  Status st = LoadParameters(&m, path);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(SerializeTest, ArchitectureMismatchRejected) {
  Rng rng(7);
  Mlp small(2, 4, 1, &rng);
  const std::string path = TempPath("mismatch");
  ASSERT_TRUE(SaveParameters(small, path).ok());
  Mlp big(3, 4, 1, &rng);  // different fc1 shape
  Status st = LoadParameters(&big, path);
  EXPECT_FALSE(st.ok());
  std::remove(path.c_str());
}

TEST(SerializeTest, TruncatedFileRejected) {
  Rng rng(8);
  Mlp m(4, 8, 2, &rng);
  const std::string path = TempPath("trunc");
  ASSERT_TRUE(SaveParameters(m, path).ok());
  // Truncate the file to half its size.
  FILE* f = fopen(path.c_str(), "rb");
  fseek(f, 0, SEEK_END);
  long size = ftell(f);
  fclose(f);
  ASSERT_EQ(truncate(path.c_str(), size / 2), 0);
  Mlp m2(4, 8, 2, &rng);
  EXPECT_FALSE(LoadParameters(&m2, path).ok());
  std::remove(path.c_str());
}

TEST(SerializeTest, FailedLoadLeavesModuleUntouched) {
  // A truncated checkpoint may parse several parameters before hitting the
  // cliff. None of them may leak into the module: loads are staged and
  // committed only after the whole file has validated, so a failed load is
  // a no-op on the weights.
  Rng rng(12);
  Mlp m(4, 8, 2, &rng);
  const std::string path = TempPath("partial");
  ASSERT_TRUE(SaveParameters(m, path).ok());
  FILE* f = fopen(path.c_str(), "rb");
  fseek(f, 0, SEEK_END);
  long size = ftell(f);
  fclose(f);
  // Keep most of the file so at least one full parameter record parses.
  ASSERT_EQ(truncate(path.c_str(), size - 8), 0);

  Rng rng2(13);  // different init: loaded params would visibly differ
  Mlp victim(4, 8, 2, &rng2);
  std::vector<std::vector<float>> before;
  for (const Tensor& p : victim.Parameters()) {
    before.emplace_back(p.data(), p.data() + p.numel());
  }
  Status st = LoadParameters(&victim, path);
  std::remove(path.c_str());
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("truncated checkpoint"), std::string::npos)
      << st.message();
  auto params = victim.Parameters();
  ASSERT_EQ(params.size(), before.size());
  for (size_t i = 0; i < params.size(); ++i) {
    EXPECT_EQ(std::memcmp(params[i].data(), before[i].data(),
                          before[i].size() * sizeof(float)),
              0)
        << "parameter " << i << " was modified by a failed load";
  }
}

TEST(SerializeTest, TrainedBaselineSurvivesRoundTrip) {
  models::ModelConfig cfg;
  cfg.seq_len = 24;
  cfg.pred_len = 12;
  cfg.channels = 2;
  cfg.dropout = 0.0f;
  Rng rng(9);
  auto model = models::CreateModel("DLinear", cfg, &rng);
  ASSERT_TRUE(model.ok());
  // Nudge weights so they are not at init.
  Rng xr(10);
  Tensor x = Tensor::Randn({2, 24, 2}, &xr);
  model.value()->Forward(x);

  const std::string path = TempPath("baseline");
  ASSERT_TRUE(SaveParameters(*model.value(), path).ok());
  Rng rng2(11);
  auto fresh = models::CreateModel("DLinear", cfg, &rng2);
  ASSERT_TRUE(LoadParameters(fresh.value().get(), path).ok());
  EXPECT_TRUE(
      AllClose(model.value()->Forward(x), fresh.value()->Forward(x)));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace nn
}  // namespace ts3net
