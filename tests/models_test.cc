#include <gtest/gtest.h>

#include <cmath>

#include "models/dft.h"
#include "models/registry.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "tensor/ops.h"

namespace ts3net {
namespace models {
namespace {

ModelConfig TinyConfig() {
  ModelConfig c;
  c.seq_len = 24;
  c.pred_len = 12;
  c.channels = 3;
  c.d_model = 8;
  c.d_ff = 8;
  c.num_layers = 2;
  c.num_heads = 2;
  c.num_kernels = 2;
  c.top_k_periods = 2;
  c.num_modes = 6;
  c.patch_len = 4;
  c.lambda = 4;
  c.dropout = 0.0f;
  c.moving_avg = 7;
  return c;
}

// ---------------------------------------------------------------------------
// DFT matrices (FEDformer substrate)
// ---------------------------------------------------------------------------

TEST(DftTest, FullModesRoundTripsRealSignal) {
  const int64_t t = 16;
  DftMatrices dft = BuildDftMatrices(t, t / 2 + 1);
  Rng rng(1);
  Tensor x = Tensor::Randn({1, t, 2}, &rng);
  Tensor x_re = MatMul(dft.f_re, x);
  Tensor x_im = MatMul(dft.f_im, x);
  Tensor back = Add(MatMul(dft.i_re, x_re), MatMul(dft.i_im, x_im));
  EXPECT_TRUE(AllClose(back, x, 1e-3f, 1e-4f));
}

TEST(DftTest, TruncationKeepsLowFrequencies) {
  const int64_t t = 32;
  // A low-frequency tone must survive truncation to few modes.
  std::vector<float> xv(t);
  for (int64_t i = 0; i < t; ++i) {
    xv[i] = std::sin(2.0f * 3.14159265f * 2.0f * i / t);
  }
  Tensor x = Tensor::FromData(std::move(xv), {1, t, 1});
  DftMatrices dft = BuildDftMatrices(t, 4);
  Tensor back = Add(MatMul(dft.i_re, MatMul(dft.f_re, x)),
                    MatMul(dft.i_im, MatMul(dft.f_im, x)));
  EXPECT_TRUE(AllClose(back, x, 1e-2f, 1e-3f));
}

TEST(DftTest, ModesAreClamped) {
  DftMatrices dft = BuildDftMatrices(10, 100);
  EXPECT_EQ(dft.f_re.dim(0), 6);  // 10/2 + 1
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

TEST(RegistryTest, AllModelNamesMatchesPaperCount) {
  EXPECT_EQ(AllModelNames().size(), 11u);
  EXPECT_EQ(AllModelNames()[0], "TS3Net");
  EXPECT_EQ(BaselineNames().size(), 10u);
}

TEST(RegistryTest, UnknownModelIsNotFound) {
  Rng rng(2);
  auto r = CreateModel("NotAModel", TinyConfig(), &rng);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(RegistryTest, NullRngIsInvalidArgument) {
  auto r = CreateModel("DLinear", TinyConfig(), nullptr);
  EXPECT_FALSE(r.ok());
}

// ---------------------------------------------------------------------------
// Every model: forward shape, gradients, one training step (parameterized)
// ---------------------------------------------------------------------------

class ModelZooTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ModelZooTest, ForwardShape) {
  Rng rng(3);
  auto model = CreateModel(GetParam(), TinyConfig(), &rng);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  Rng xr(4);
  Tensor x = Tensor::Randn({2, 24, 3}, &xr);
  Tensor y = model.value()->Forward(x);
  EXPECT_EQ(y.shape(), (Shape{2, 12, 3}));
}

TEST_P(ModelZooTest, OutputIsFinite) {
  Rng rng(5);
  auto model = CreateModel(GetParam(), TinyConfig(), &rng);
  ASSERT_TRUE(model.ok());
  model.value()->SetTraining(false);
  Rng xr(6);
  Tensor x = Tensor::Randn({1, 24, 3}, &xr, 3.0f);
  Tensor y = model.value()->Forward(x);
  for (int64_t i = 0; i < y.numel(); ++i) {
    ASSERT_TRUE(std::isfinite(y.at(i))) << GetParam() << " idx " << i;
  }
}

TEST_P(ModelZooTest, AllParametersReceiveGradients) {
  Rng rng(7);
  auto model = CreateModel(GetParam(), TinyConfig(), &rng);
  ASSERT_TRUE(model.ok());
  Rng xr(8);
  Tensor x = Tensor::Randn({2, 24, 3}, &xr);
  Tensor target = Tensor::Randn({2, 12, 3}, &xr);
  nn::MseLoss(model.value()->Forward(x), target).Backward();
  for (const auto& [name, p] : model.value()->NamedParameters()) {
    EXPECT_TRUE(p.grad().defined()) << GetParam() << " param " << name;
  }
}

TEST_P(ModelZooTest, OneAdamStepReducesLossOnFixedBatch) {
  Rng rng(9);
  auto created = CreateModel(GetParam(), TinyConfig(), &rng);
  ASSERT_TRUE(created.ok());
  nn::Module* model = created.value().get();
  model->SetTraining(false);  // deterministic (no dropout) for comparability
  Rng xr(10);
  Tensor x = Tensor::Randn({4, 24, 3}, &xr);
  Tensor target = Tensor::Randn({4, 12, 3}, &xr);
  nn::AdamOptions opt;
  opt.lr = 5e-3f;
  nn::Adam adam(model->Parameters(), opt);
  float first = nn::MseLoss(model->Forward(x), target).item();
  for (int step = 0; step < 8; ++step) {
    adam.ZeroGrad();
    Tensor loss = nn::MseLoss(model->Forward(x), target);
    loss.Backward();
    adam.Step();
  }
  float last = nn::MseLoss(model->Forward(x), target).item();
  EXPECT_LT(last, first) << GetParam();
}

TEST_P(ModelZooTest, DeterministicGivenSeed) {
  ModelConfig cfg = TinyConfig();
  Rng r1(11), r2(11);
  auto m1 = CreateModel(GetParam(), cfg, &r1);
  auto m2 = CreateModel(GetParam(), cfg, &r2);
  ASSERT_TRUE(m1.ok() && m2.ok());
  m1.value()->SetTraining(false);
  m2.value()->SetTraining(false);
  Rng xr(12);
  Tensor x = Tensor::Randn({2, 24, 3}, &xr);
  EXPECT_TRUE(AllClose(m1.value()->Forward(x), m2.value()->Forward(x)))
      << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, ModelZooTest,
    ::testing::Values("TS3Net", "PatchTST", "TimesNet", "MICN", "LightTS",
                      "DLinear", "FEDformer", "Stationary", "Autoformer",
                      "Pyraformer", "Informer", "TS3Net-woTD", "TS3Net-woTF",
                      "TS3Net-woBoth", "TSD-CNN", "TSD-Trans", "LSTM", "TCN",
                      "SCINet", "TS3Net-STFT"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// ---------------------------------------------------------------------------
// Model-specific behaviours
// ---------------------------------------------------------------------------

TEST(DLinearTest, LearnsLinearTrendExactly) {
  // A pure linear ramp is perfectly predictable by DLinear.
  ModelConfig cfg = TinyConfig();
  cfg.channels = 1;
  Rng rng(13);
  auto created = CreateModel("DLinear", cfg, &rng);
  ASSERT_TRUE(created.ok());
  nn::Module* model = created.value().get();
  model->SetTraining(false);

  // Build windows from a ramp.
  const int64_t n = 16;
  std::vector<float> xv, yv;
  for (int64_t b = 0; b < n; ++b) {
    for (int64_t t = 0; t < 24; ++t) xv.push_back(0.1f * (b + t));
    for (int64_t t = 24; t < 36; ++t) yv.push_back(0.1f * (b + t));
  }
  Tensor x = Tensor::FromData(std::move(xv), {n, 24, 1});
  Tensor y = Tensor::FromData(std::move(yv), {n, 12, 1});
  nn::AdamOptions opt;
  opt.lr = 1e-2f;
  nn::Adam adam(model->Parameters(), opt);
  float loss_val = 0;
  for (int step = 0; step < 300; ++step) {
    adam.ZeroGrad();
    Tensor loss = nn::MseLoss(model->Forward(x), y);
    loss_val = loss.item();
    loss.Backward();
    adam.Step();
  }
  EXPECT_LT(loss_val, 1e-3f);
}

TEST(TimesNetTest, ImputationModeReconstructsWindowShape) {
  ModelConfig cfg = TinyConfig();
  cfg.imputation = true;
  cfg.pred_len = cfg.seq_len;
  Rng rng(14);
  auto model = CreateModel("TimesNet", cfg, &rng);
  ASSERT_TRUE(model.ok());
  Tensor x = Tensor::Zeros({2, 24, 3});
  EXPECT_EQ(model.value()->Forward(x).shape(), (Shape{2, 24, 3}));
}

TEST(PatchTstTest, ChannelIndependence) {
  // With channel-independent processing, permuting input channels permutes
  // output channels identically.
  ModelConfig cfg = TinyConfig();
  Rng rng(15);
  auto created = CreateModel("PatchTST", cfg, &rng);
  ASSERT_TRUE(created.ok());
  nn::Module* model = created.value().get();
  model->SetTraining(false);
  Rng xr(16);
  Tensor x = Tensor::Randn({1, 24, 3}, &xr);
  Tensor y = model->Forward(x);
  // Swap channels 0 and 2.
  Tensor xs = Concat({Slice(x, 2, 2, 1), Slice(x, 2, 1, 1), Slice(x, 2, 0, 1)}, 2);
  Tensor ys = model->Forward(xs);
  Tensor ys_expected =
      Concat({Slice(y, 2, 2, 1), Slice(y, 2, 1, 1), Slice(y, 2, 0, 1)}, 2);
  EXPECT_TRUE(AllClose(ys, ys_expected, 1e-4f, 1e-5f));
}

TEST(InformerTest, HandlesOddLayerCounts) {
  ModelConfig cfg = TinyConfig();
  cfg.num_layers = 3;
  Rng rng(17);
  auto model = CreateModel("Informer", cfg, &rng);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model.value()->Forward(Tensor::Zeros({1, 24, 3})).shape(),
            (Shape{1, 12, 3}));
}

TEST(StationaryTest, ScaleInvariancePropertyApproximatelyHolds) {
  // Instance normalization makes the model equivariant to per-instance
  // affine rescaling of the input (up to the learned de-stationary factors).
  ModelConfig cfg = TinyConfig();
  Rng rng(18);
  auto created = CreateModel("Stationary", cfg, &rng);
  ASSERT_TRUE(created.ok());
  nn::Module* model = created.value().get();
  model->SetTraining(false);
  Rng xr(19);
  Tensor x = Tensor::Randn({1, 24, 3}, &xr);
  Tensor y1 = model->Forward(x);
  Tensor y2 = model->Forward(MulScalar(x, 3.0f));
  // The normalized representations match, so outputs should scale close to
  // 3x (exactly 3x if tau/delta were constant).
  Tensor ratio = Div(y2, AddScalar(y1, 1e-3f));
  double mean_ratio = Mean(Abs(ratio)).item();
  EXPECT_GT(mean_ratio, 1.5);
}

}  // namespace
}  // namespace models
}  // namespace ts3net
