// End-to-end smoke test of ts3net_cli with the observability flags: runs a
// tiny 1-epoch training and parses back the exported Chrome trace and
// metrics JSON. TS3_CLI_PATH is injected by CMake as the built binary path.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "common/obs/json.h"

namespace ts3net {
namespace {

std::string CliPath() { return TS3_CLI_PATH; }

int RunCommand(const std::string& cmd) {
  std::fprintf(stderr, "[cli_smoke] %s\n", cmd.c_str());
  const int status = std::system(cmd.c_str());
  return status;
}

std::string ReadFileOrEmpty(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return "";
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

class CliSmokeTest : public ::testing::Test {
 protected:
  std::string Tmp(const std::string& name) {
    return ::testing::TempDir() + "ts3_cli_smoke_" + name;
  }
};

TEST_F(CliSmokeTest, HelpExitsCleanly) {
  EXPECT_EQ(RunCommand(CliPath() + " help > /dev/null"), 0);
}

TEST_F(CliSmokeTest, TrainWithObsFlagsExportsValidJson) {
  const std::string csv = Tmp("series.csv");
  const std::string trace = Tmp("trace.json");
  const std::string metrics = Tmp("metrics.json");

  ASSERT_EQ(RunCommand(CliPath() +
                       " generate --dataset=ETTh1 --fraction=0.05 --out=" +
                       csv + " > /dev/null"),
            0);

  // Tiny 1-epoch train with every obs flag on; must exit cleanly and write
  // both export files.
  ASSERT_EQ(RunCommand(CliPath() + " forecast --csv=" + csv +
                       " --lookback=32 --horizon=8 --epochs=1 --batches=2" +
                       " --dmodel=8 --lambda=4 --ts3_num_threads=2" +
                       " --ts3_log_level=debug --ts3_profile" +
                       " --ts3_trace=" + trace +
                       " --ts3_metrics_json=" + metrics + " > /dev/null 2> " +
                       Tmp("stderr.txt")),
            0);

  // The profile table goes to stderr.
  const std::string stderr_text = ReadFileOrEmpty(Tmp("stderr.txt"));
  EXPECT_NE(stderr_text.find("span profile"), std::string::npos);
  EXPECT_NE(stderr_text.find("train/epoch"), std::string::npos);

  // Trace file: well-formed JSON containing the expected span names from
  // every instrumented layer (trainer, autograd ops, CWT, thread pool).
  const std::string trace_json = ReadFileOrEmpty(trace);
  ASSERT_FALSE(trace_json.empty()) << "trace file missing: " << trace;
  std::string error;
  EXPECT_TRUE(obs::JsonValidate(trace_json, &error)) << error;
  EXPECT_NE(trace_json.find("\"traceEvents\""), std::string::npos);
  for (const char* span :
       {"train/fit", "train/epoch", "train/batch", "train/forward",
        "train/backward", "autograd/backward", "op/", "bw/", "cwt/",
        "pool/parallel_for", "eval/forecast", "eval/walk_forward"}) {
    EXPECT_NE(trace_json.find(span), std::string::npos)
        << "span missing from trace: " << span;
  }

  // Metrics file: well-formed JSON with the training series and the
  // dispatch counters.
  const std::string metrics_json = ReadFileOrEmpty(metrics);
  ASSERT_FALSE(metrics_json.empty()) << "metrics file missing: " << metrics;
  EXPECT_TRUE(obs::JsonValidate(metrics_json, &error)) << error;
  for (const char* key :
       {"\"counters\"", "\"gauges\"", "\"histograms\"", "\"series\"",
        "train/epoch_loss", "train/epoch_val_loss", "train/epoch_lr",
        "train/epoch_time_ms", "train/epoch_grad_norm",
        "autograd/ops_dispatched"}) {
    EXPECT_NE(metrics_json.find(key), std::string::npos)
        << "key missing from metrics: " << key;
  }

  std::remove(csv.c_str());
  std::remove(trace.c_str());
  std::remove(metrics.c_str());
}

TEST_F(CliSmokeTest, MetricsJsonWithoutTracing) {
  const std::string csv = Tmp("series2.csv");
  const std::string metrics = Tmp("metrics2.json");
  ASSERT_EQ(RunCommand(CliPath() +
                       " generate --dataset=Exchange --fraction=0.05 --out=" +
                       csv + " > /dev/null"),
            0);
  // --ts3_metrics_json alone must work without span recording.
  ASSERT_EQ(RunCommand(CliPath() + " forecast --csv=" + csv +
                       " --lookback=32 --horizon=8 --epochs=1 --batches=2" +
                       " --dmodel=8 --lambda=4 --ts3_metrics_json=" + metrics +
                       " > /dev/null 2>&1"),
            0);
  const std::string metrics_json = ReadFileOrEmpty(metrics);
  ASSERT_FALSE(metrics_json.empty());
  std::string error;
  EXPECT_TRUE(obs::JsonValidate(metrics_json, &error)) << error;
  EXPECT_NE(metrics_json.find("train/epoch_loss"), std::string::npos);

  std::remove(csv.c_str());
  std::remove(metrics.c_str());
}

TEST_F(CliSmokeTest, ServeReportsBitwiseIdenticalBatchedOutputs) {
  const std::string csv = Tmp("series3.csv");
  const std::string out = Tmp("serve_stdout.txt");
  ASSERT_EQ(RunCommand(CliPath() +
                       " generate --dataset=ETTh1 --fraction=0.05 --out=" +
                       csv + " > /dev/null"),
            0);
  // Quick-train, freeze a snapshot, serve test-split windows serially and
  // micro-batched. The command exits non-zero if the batched outputs are
  // not bitwise identical to the serial reference, so the exit code is the
  // core assertion; the metrics exposed on stdout are checked on top.
  ASSERT_EQ(RunCommand(CliPath() + " serve --csv=" + csv +
                       " --model=LSTM --lookback=32 --horizon=8 --epochs=1" +
                       " --batches=2 --dmodel=8 --serve_requests=32" +
                       " --serve_clients=4 --serve_max_batch=8" +
                       " --ts3_num_threads=1 > " + out + " 2>/dev/null"),
            0);
  const std::string text = ReadFileOrEmpty(out);
  EXPECT_NE(text.find("bitwise identical"), std::string::npos) << text;
  EXPECT_NE(text.find("mean batch size"), std::string::npos) << text;
  EXPECT_NE(text.find("parameters frozen"), std::string::npos) << text;

  std::remove(csv.c_str());
  std::remove(out.c_str());
}

TEST_F(CliSmokeTest, ServeModelsRegistryModeHotSwapsBitwise) {
  const std::string csv = Tmp("series4.csv");
  const std::string out = Tmp("registry_stdout.txt");
  ASSERT_EQ(RunCommand(CliPath() +
                       " generate --dataset=ETTh1 --fraction=0.05 --out=" +
                       csv + " > /dev/null"),
            0);
  // Multi-model registry mode: two names published from one weight set,
  // hot-swapped at the halfway mark while clients round-robin across them.
  // Exit code asserts the bitwise check; the report must show the post-swap
  // version (2) and the swap round.
  ASSERT_EQ(RunCommand(CliPath() + " serve --csv=" + csv +
                       " --model=LSTM --lookback=32 --horizon=8 --epochs=1" +
                       " --batches=2 --dmodel=8 --serve_requests=64" +
                       " --serve_clients=4 --serve_max_batch=8" +
                       " --serve_models=etth1-a,etth1-b" +
                       " --ts3_num_threads=1 > " + out + " 2>/dev/null"),
            0);
  const std::string text = ReadFileOrEmpty(out);
  EXPECT_NE(text.find("2 model(s) published"), std::string::npos) << text;
  EXPECT_NE(text.find("version 2"), std::string::npos) << text;
  EXPECT_NE(text.find("1 swap round(s)"), std::string::npos) << text;
  EXPECT_NE(text.find("bitwise identical"), std::string::npos) << text;

  std::remove(csv.c_str());
  std::remove(out.c_str());
}

}  // namespace
}  // namespace ts3net
