#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <set>

#include "data/csv.h"
#include "data/noise.h"
#include "data/scaler.h"
#include "data/synthetic.h"
#include "data/timeseries.h"
#include "data/window.h"
#include "signal/period.h"
#include "tensor/ops.h"

namespace ts3net {
namespace data {
namespace {

// ---------------------------------------------------------------------------
// Synthetic generator
// ---------------------------------------------------------------------------

TEST(SyntheticTest, ShapeMatchesOptions) {
  SyntheticOptions o;
  o.length = 500;
  o.channels = 3;
  TimeSeries s = GenerateSynthetic(o);
  EXPECT_EQ(s.values.shape(), (Shape{500, 3}));
  EXPECT_EQ(s.channel_names.size(), 3u);
}

TEST(SyntheticTest, DeterministicForSameSeed) {
  SyntheticOptions o;
  o.length = 300;
  o.channels = 2;
  o.seed = 7;
  o.components = {{24.0, 1.0, 0.3, 120.0}};
  TimeSeries a = GenerateSynthetic(o);
  TimeSeries b = GenerateSynthetic(o);
  EXPECT_TRUE(AllClose(a.values, b.values));
}

TEST(SyntheticTest, DifferentSeedsDiffer) {
  SyntheticOptions o;
  o.length = 300;
  o.channels = 1;
  o.components = {{24.0, 1.0, 0.0, 0.0}};
  o.seed = 1;
  TimeSeries a = GenerateSynthetic(o);
  o.seed = 2;
  TimeSeries b = GenerateSynthetic(o);
  EXPECT_FALSE(AllClose(a.values, b.values));
}

TEST(SyntheticTest, DominantPeriodIsRecovered) {
  SyntheticOptions o;
  o.length = 960;
  o.channels = 2;
  o.components = {{24.0, 2.0, 0.0, 0.0}};
  o.noise_std = 0.1;
  o.cross_channel_mix = 0.0;
  TimeSeries s = GenerateSynthetic(o);
  // 960 / 24 = 40 cycles -> frequency bin 40 -> period 24.
  auto periods = DetectTopKPeriods(s.values, 1);
  EXPECT_EQ(periods[0].period, 24);
}

TEST(SyntheticTest, TrendSlopeShowsUp) {
  SyntheticOptions o;
  o.length = 2000;
  o.channels = 1;
  o.trend_slope = 10.0;
  o.noise_std = 0.1;
  o.cross_channel_mix = 0.0;
  TimeSeries s = GenerateSynthetic(o);
  // Mean of the last tenth should exceed the mean of the first tenth by a
  // large fraction of the total drift.
  double head = 0, tail = 0;
  for (int t = 0; t < 200; ++t) head += s.values.at(t);
  for (int t = 1800; t < 2000; ++t) tail += s.values.at(t);
  EXPECT_GT(tail / 200 - head / 200, 5.0);
}

TEST(SyntheticTest, AmplitudeModulationChangesEnvelope) {
  SyntheticOptions o;
  o.length = 1920;
  o.channels = 1;
  o.components = {{24.0, 1.0, 0.8, 960.0}};
  o.noise_std = 0.01;
  o.cross_channel_mix = 0.0;
  o.seed = 3;
  TimeSeries s = GenerateSynthetic(o);
  // RMS of the tone over windows at modulation peak vs trough should differ.
  auto rms = [&](int64_t lo, int64_t hi) {
    double acc = 0;
    for (int64_t t = lo; t < hi; ++t) acc += s.values.at(t) * s.values.at(t);
    return std::sqrt(acc / (hi - lo));
  };
  const double r1 = rms(0, 480);
  const double r2 = rms(480, 960);
  const double ratio = std::max(r1, r2) / std::min(r1, r2);
  EXPECT_GT(ratio, 1.3);
}

TEST(SyntheticTest, CrossChannelMixCorrelatesChannels) {
  SyntheticOptions o;
  o.length = 1000;
  o.channels = 2;
  o.random_walk_std = 0.1;
  o.noise_std = 0.1;
  o.cross_channel_mix = 0.9;
  TimeSeries s = GenerateSynthetic(o);
  // Pearson correlation between the channels should be high.
  double sx = 0, sy = 0, sxx = 0, syy = 0, sxy = 0;
  const int64_t n = 1000;
  for (int64_t t = 0; t < n; ++t) {
    const double a = s.values.at(t * 2);
    const double b = s.values.at(t * 2 + 1);
    sx += a;
    sy += b;
    sxx += a * a;
    syy += b * b;
    sxy += a * b;
  }
  const double cov = sxy / n - (sx / n) * (sy / n);
  const double va = sxx / n - (sx / n) * (sx / n);
  const double vb = syy / n - (sy / n) * (sy / n);
  EXPECT_GT(cov / std::sqrt(va * vb), 0.7);
}

TEST(PresetTest, AllNamesResolve) {
  for (const std::string& name : AllDatasetNames()) {
    auto preset = DatasetPreset(name, 0.1);
    ASSERT_TRUE(preset.ok()) << name;
    TimeSeries s = GenerateSynthetic(preset.value());
    EXPECT_GT(s.length(), 800) << name;
    EXPECT_GE(s.channels(), 7) << name;
  }
}

TEST(PresetTest, ChannelDimsMatchPaperTable2) {
  EXPECT_EQ(GenerateSynthetic(DatasetPreset("ETTh1", 0.1).value()).channels(), 7);
  EXPECT_EQ(GenerateSynthetic(DatasetPreset("Weather", 0.1).value()).channels(), 21);
  EXPECT_EQ(GenerateSynthetic(DatasetPreset("Exchange", 0.1).value()).channels(), 8);
  EXPECT_EQ(
      GenerateSynthetic(DatasetPreset("Electricity", 0.05, 16).value()).channels(),
      16);  // capped
}

TEST(PresetTest, UnknownNameIsNotFound) {
  auto r = DatasetPreset("NoSuchDataset");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(PresetTest, BadFractionIsInvalidArgument) {
  EXPECT_FALSE(DatasetPreset("ETTh1", 0.0).ok());
  EXPECT_FALSE(DatasetPreset("ETTh1", 5.0).ok());
}

// ---------------------------------------------------------------------------
// Split
// ---------------------------------------------------------------------------

TEST(SplitTest, FractionsRespected) {
  SyntheticOptions o;
  o.length = 1000;
  o.channels = 2;
  TimeSeries s = GenerateSynthetic(o);
  SplitSeries split = SplitChronological(s, 0.7, 0.1);
  EXPECT_EQ(split.train.length(), 700);
  EXPECT_EQ(split.val.length(), 100);
  EXPECT_EQ(split.test.length(), 200);
}

TEST(SplitTest, SegmentsAreContiguous) {
  SyntheticOptions o;
  o.length = 100;
  o.channels = 1;
  TimeSeries s = GenerateSynthetic(o);
  SplitSeries split = SplitChronological(s, 0.5, 0.2);
  EXPECT_FLOAT_EQ(split.val.values.at(0), s.values.at(50));
  EXPECT_FLOAT_EQ(split.test.values.at(0), s.values.at(70));
}

// ---------------------------------------------------------------------------
// Scaler
// ---------------------------------------------------------------------------

TEST(ScalerTest, TransformStandardizes) {
  Rng rng(1);
  Tensor x = Tensor::Randn({500, 3}, &rng, 4.0f);
  // Shift channel 1.
  for (int64_t t = 0; t < 500; ++t) x.data()[t * 3 + 1] += 10.0f;
  StandardScaler scaler;
  scaler.Fit(x);
  Tensor z = scaler.Transform(x);
  for (int64_t c = 0; c < 3; ++c) {
    double sum = 0, sum_sq = 0;
    for (int64_t t = 0; t < 500; ++t) {
      sum += z.at(t * 3 + c);
      sum_sq += z.at(t * 3 + c) * z.at(t * 3 + c);
    }
    EXPECT_NEAR(sum / 500, 0.0, 1e-4);
    EXPECT_NEAR(sum_sq / 500, 1.0, 1e-3);
  }
}

TEST(ScalerTest, InverseRoundTrips) {
  Rng rng(2);
  Tensor x = Tensor::Randn({100, 2}, &rng, 3.0f);
  StandardScaler scaler;
  scaler.Fit(x);
  Tensor back = scaler.InverseTransform(scaler.Transform(x));
  EXPECT_TRUE(AllClose(back, x, 1e-4f, 1e-4f));
}

TEST(ScalerTest, BatchedTransformSupported) {
  Rng rng(3);
  Tensor train = Tensor::Randn({100, 2}, &rng);
  StandardScaler scaler;
  scaler.Fit(train);
  Tensor batch = Tensor::Randn({4, 10, 2}, &rng);
  EXPECT_EQ(scaler.Transform(batch).shape(), batch.shape());
}

TEST(ScalerTest, ConstantChannelDoesNotBlowUp) {
  Tensor x = Tensor::Full({50, 1}, 5.0f);
  StandardScaler scaler;
  scaler.Fit(x);
  Tensor z = scaler.Transform(x);
  for (int64_t i = 0; i < z.numel(); ++i) {
    EXPECT_TRUE(std::isfinite(z.at(i)));
  }
}

// ---------------------------------------------------------------------------
// CSV round-trip
// ---------------------------------------------------------------------------

TEST(CsvTest, SaveLoadRoundTrip) {
  SyntheticOptions o;
  o.length = 50;
  o.channels = 3;
  TimeSeries s = GenerateSynthetic(o);
  const std::string path = "/tmp/ts3net_test_roundtrip.csv";
  ASSERT_TRUE(SaveCsv(s, path).ok());
  auto loaded = LoadCsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().values.shape(), s.values.shape());
  EXPECT_TRUE(AllClose(loaded.value().values, s.values, 1e-4f, 1e-4f));
  std::remove(path.c_str());
}

TEST(CsvTest, SkipsNonNumericDateColumn) {
  const std::string path = "/tmp/ts3net_test_date.csv";
  FILE* f = fopen(path.c_str(), "w");
  fprintf(f, "date,a,b\n2020-01-01,1.5,2\n2020-01-02,3,4.5\n");
  fclose(f);
  auto loaded = LoadCsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().values.shape(), (Shape{2, 2}));
  EXPECT_FLOAT_EQ(loaded.value().values.at(0), 1.5f);
  EXPECT_EQ(loaded.value().channel_names[0], "a");
  std::remove(path.c_str());
}

TEST(CsvTest, MissingFileIsIOError) {
  auto r = LoadCsv("/tmp/definitely_not_here_ts3net.csv");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
}

TEST(CsvTest, RaggedRowIsInvalid) {
  const std::string path = "/tmp/ts3net_test_ragged.csv";
  FILE* f = fopen(path.c_str(), "w");
  fprintf(f, "a,b\n1,2\n3\n");
  fclose(f);
  EXPECT_FALSE(LoadCsv(path).ok());
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// ForecastDataset
// ---------------------------------------------------------------------------

TEST(ForecastDatasetTest, SizeAndShapes) {
  Rng rng(4);
  Tensor values = Tensor::Randn({100, 3}, &rng);
  ForecastDataset ds(values, 24, 12);
  EXPECT_EQ(ds.size(), 100 - 24 - 12 + 1);
  Tensor x, y;
  ds.Get(0, &x, &y);
  EXPECT_EQ(x.shape(), (Shape{24, 3}));
  EXPECT_EQ(y.shape(), (Shape{12, 3}));
}

TEST(ForecastDatasetTest, WindowsAlignWithSource) {
  Tensor values = Reshape(Tensor::Arange(40), {40, 1});
  ForecastDataset ds(values, 5, 3);
  Tensor x, y;
  ds.Get(7, &x, &y);
  EXPECT_FLOAT_EQ(x.at(0), 7.0f);
  EXPECT_FLOAT_EQ(x.at(4), 11.0f);
  EXPECT_FLOAT_EQ(y.at(0), 12.0f);
  EXPECT_FLOAT_EQ(y.at(2), 14.0f);
}

TEST(ForecastDatasetTest, BatchGather) {
  Tensor values = Reshape(Tensor::Arange(60), {30, 2});
  ForecastDataset ds(values, 4, 2);
  Tensor x, y;
  ds.GetBatch({0, 5, 10}, &x, &y);
  EXPECT_EQ(x.shape(), (Shape{3, 4, 2}));
  EXPECT_EQ(y.shape(), (Shape{3, 2, 2}));
  // Sample 1 starts at t=5: x[1][0][0] = values[5][0] = 10.
  EXPECT_FLOAT_EQ(x.at((1 * 4 + 0) * 2), 10.0f);
}

TEST(ForecastDatasetDeathTest, TooShortSeriesAborts) {
  Tensor values = Tensor::Zeros({10, 1});
  EXPECT_DEATH(ForecastDataset(values, 8, 8), "too short");
}

// ---------------------------------------------------------------------------
// ImputationDataset
// ---------------------------------------------------------------------------

TEST(ImputationDatasetTest, MaskRatioApproximatelyRespected) {
  Rng rng(5);
  Tensor values = Tensor::Randn({500, 2}, &rng);
  ImputationDataset ds(values, 96, 0.25, 99);
  Tensor x, mask, y;
  int64_t masked = 0, total = 0;
  for (int64_t i = 0; i < 20; ++i) {
    ds.Get(i * 20, &x, &mask, &y);
    for (int64_t j = 0; j < mask.numel(); ++j) {
      masked += (mask.at(j) == 0.0f);
      ++total;
    }
  }
  EXPECT_NEAR(static_cast<double>(masked) / total, 0.25, 0.04);
}

TEST(ImputationDatasetTest, MaskedPositionsAreZeroInInput) {
  Rng rng(6);
  // Use values far from zero so zeroing is detectable.
  Tensor values = AddScalar(Tensor::Randn({200, 2}, &rng), 10.0f);
  ImputationDataset ds(values, 48, 0.5, 7);
  Tensor x, mask, y;
  ds.Get(3, &x, &mask, &y);
  for (int64_t j = 0; j < x.numel(); ++j) {
    if (mask.at(j) == 0.0f) {
      EXPECT_EQ(x.at(j), 0.0f);
    } else {
      EXPECT_EQ(x.at(j), y.at(j));
    }
  }
}

TEST(ImputationDatasetTest, MaskIsDeterministicPerSample) {
  Rng rng(7);
  Tensor values = Tensor::Randn({200, 1}, &rng);
  ImputationDataset ds(values, 48, 0.3, 11);
  Tensor x1, m1, y1, x2, m2, y2;
  ds.Get(5, &x1, &m1, &y1);
  ds.Get(5, &x2, &m2, &y2);
  EXPECT_TRUE(AllClose(m1, m2));
}

TEST(ImputationDatasetTest, MaskAppliesPerTimeStep) {
  Rng rng(8);
  Tensor values = Tensor::Randn({100, 4}, &rng);
  ImputationDataset ds(values, 32, 0.4, 13);
  Tensor x, mask, y;
  ds.Get(0, &x, &mask, &y);
  // All channels of a time step share the mask bit.
  for (int64_t t = 0; t < 32; ++t) {
    const float first = mask.at(t * 4);
    for (int64_t c = 1; c < 4; ++c) EXPECT_EQ(mask.at(t * 4 + c), first);
  }
}

TEST(ImputationDatasetTest, InterpolationBridgesMaskedRuns) {
  // A linear ramp: interpolated fill must reproduce the ramp exactly at
  // interior masked points.
  Tensor values = Reshape(Tensor::Arange(200), {200, 1});
  ImputationDataset ds(values, 64, 0.4, 21,
                       ImputationDataset::FillMode::kInterpolate);
  Tensor x, mask, y;
  ds.Get(10, &x, &mask, &y);
  // Find interior masked points (an observed point exists on both sides).
  bool checked = false;
  for (int64_t t = 1; t < 63; ++t) {
    if (mask.at(t) != 0.0f) continue;
    bool has_lo = false, has_hi = false;
    for (int64_t u = 0; u < t; ++u) has_lo |= (mask.at(u) != 0.0f);
    for (int64_t u = t + 1; u < 64; ++u) has_hi |= (mask.at(u) != 0.0f);
    if (has_lo && has_hi) {
      EXPECT_NEAR(x.at(t), y.at(t), 1e-4f) << "t=" << t;
      checked = true;
    }
  }
  EXPECT_TRUE(checked);
}

TEST(ImputationDatasetTest, InterpolationKeepsObservedValues) {
  Rng rng(22);
  Tensor values = Tensor::Randn({150, 2}, &rng);
  ImputationDataset ds(values, 48, 0.3, 23,
                       ImputationDataset::FillMode::kInterpolate);
  Tensor x, mask, y;
  ds.Get(5, &x, &mask, &y);
  for (int64_t j = 0; j < x.numel(); ++j) {
    if (mask.at(j) == 1.0f) {
      EXPECT_EQ(x.at(j), y.at(j));
    }
  }
}

// ---------------------------------------------------------------------------
// BatchSampler
// ---------------------------------------------------------------------------

TEST(BatchSamplerTest, CoversAllIndicesOnce) {
  BatchSampler sampler(10, 3, /*shuffle=*/true, 1);
  std::vector<int64_t> batch;
  std::multiset<int64_t> seen;
  while (sampler.Next(&batch)) {
    for (int64_t i : batch) seen.insert(i);
  }
  EXPECT_EQ(seen.size(), 10u);
  for (int64_t i = 0; i < 10; ++i) EXPECT_EQ(seen.count(i), 1u);
}

TEST(BatchSamplerTest, LastBatchMayBeSmaller) {
  BatchSampler sampler(10, 4, /*shuffle=*/false, 1);
  std::vector<int64_t> batch;
  std::vector<size_t> sizes;
  while (sampler.Next(&batch)) sizes.push_back(batch.size());
  ASSERT_EQ(sizes.size(), 3u);
  EXPECT_EQ(sizes[2], 2u);
  EXPECT_EQ(sampler.num_batches(), 3);
}

TEST(BatchSamplerTest, NoShuffleIsSequential) {
  BatchSampler sampler(6, 2, /*shuffle=*/false, 1);
  std::vector<int64_t> batch;
  sampler.Next(&batch);
  EXPECT_EQ(batch[0], 0);
  EXPECT_EQ(batch[1], 1);
}

TEST(BatchSamplerTest, ResetReshuffles) {
  BatchSampler sampler(100, 100, /*shuffle=*/true, 5);
  std::vector<int64_t> first, second;
  sampler.Next(&first);
  sampler.Reset();
  sampler.Next(&second);
  EXPECT_NE(first, second);  // overwhelmingly likely with 100 elements
}

// ---------------------------------------------------------------------------
// Noise injection (Table VIII protocol)
// ---------------------------------------------------------------------------

TEST(NoiseTest, ZeroRhoIsIdentity) {
  Rng rng(9);
  Tensor x = Tensor::Randn({100, 2}, &rng);
  Rng noise_rng(10);
  EXPECT_TRUE(AllClose(InjectNoise(x, 0.0, &noise_rng), x));
}

TEST(NoiseTest, ApproximatelyRhoFractionPerturbed) {
  Rng rng(11);
  Tensor x = Tensor::Randn({2000, 1}, &rng);
  Rng noise_rng(12);
  Tensor y = InjectNoise(x, 0.1, &noise_rng);
  int64_t changed = 0;
  for (int64_t t = 0; t < 2000; ++t) changed += (y.at(t) != x.at(t));
  EXPECT_NEAR(changed / 2000.0, 0.1, 0.03);
}

TEST(NoiseTest, NoiseScalesWithSignalStd) {
  Rng rng(13);
  // Channel 0 has std 1, channel 1 has std 10.
  Tensor x = Tensor::Randn({5000, 2}, &rng);
  for (int64_t t = 0; t < 5000; ++t) x.data()[t * 2 + 1] *= 10.0f;
  Rng noise_rng(14);
  Tensor y = InjectNoise(x, 1.0, &noise_rng);
  double d0 = 0, d1 = 0;
  for (int64_t t = 0; t < 5000; ++t) {
    d0 += std::pow(y.at(t * 2) - x.at(t * 2), 2.0);
    d1 += std::pow(y.at(t * 2 + 1) - x.at(t * 2 + 1), 2.0);
  }
  // Injected variance should scale with the squared channel std (x100).
  EXPECT_GT(d1 / d0, 25.0);
}

}  // namespace
}  // namespace data
}  // namespace ts3net
