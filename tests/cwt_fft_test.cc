// Cross-implementation oracle suite for the FFT CWT path: the dense
// matrix-based CwtAmplitudeOp is the reference and CwtAmplitudeFftOp must
// agree with it — forward values and input gradients — on random inputs,
// on both the padded power-of-two FFT path and the exact-length Bluestein
// path, plus the shared-plan cache, determinism, and signal-path
// regressions that ride along.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <utility>
#include <vector>

#include "common/threadpool.h"
#include "common/transform_cache.h"
#include "signal/cwt.h"
#include "signal/cwt_plan.h"
#include "signal/fft.h"
#include "signal/period.h"
#include "signal/wavelet.h"
#include "tensor/gradcheck.h"
#include "tensor/ops.h"

namespace ts3net {
namespace {

WaveletBank SmallBank(int lambda = 8, int order = 1) {
  WaveletBankOptions opt;
  opt.num_subbands = lambda;
  opt.order = order;
  return WaveletBank::Create(opt);
}

void ExpectRelClose(const Tensor& got, const Tensor& want, float rtol,
                    const char* what) {
  ASSERT_EQ(got.shape(), want.shape()) << what;
  const float* pg = got.data();
  const float* pw = want.data();
  float max_rel = 0.0f;
  for (int64_t i = 0; i < got.numel(); ++i) {
    const float denom = std::max(1.0f, std::fabs(pw[i]));
    max_rel = std::max(max_rel, std::fabs(pg[i] - pw[i]) / denom);
  }
  EXPECT_LE(max_rel, rtol) << what << ": max relative error " << max_rel;
}

void ExpectBitwiseEqual(const Tensor& a, const Tensor& b) {
  ASSERT_EQ(a.shape(), b.shape());
  if (a.numel() > 0) {
    EXPECT_EQ(std::memcmp(a.data(), b.data(),
                          sizeof(float) * static_cast<size_t>(a.numel())),
              0);
  }
}

/// Runs forward + backward through both implementations on the same random
/// input and checks [B, lambda, T, D] amplitudes and [B, T, D] input
/// gradients agree within `rtol`.
void CompareFftAgainstDense(const WaveletBank& bank, int64_t b, int64_t t_len,
                            int64_t d, bool pad_to_power_of_two,
                            uint64_t seed) {
  auto [w_re, w_im] = BuildCwtMatrices(bank, t_len);
  const CwtFftPlan plan = BuildCwtFftPlan(bank, t_len, pad_to_power_of_two);
  if (!pad_to_power_of_two) {
    // The exact-length plan must actually exercise the Bluestein FFT.
    ASSERT_FALSE(IsPowerOfTwo(static_cast<size_t>(plan.fft_size)))
        << "choose T so the unpadded size is not a power of two";
  }
  auto shared = std::make_shared<const CwtFftPlan>(plan);

  Rng rng(seed);
  Tensor x = Tensor::Randn({b, t_len, d}, &rng);
  Tensor go = Tensor::Randn({b, bank.num_subbands(), t_len, d}, &rng);

  Tensor x_dense = x.Clone().set_requires_grad(true);
  Tensor amp_dense = CwtAmplitudeOp(x_dense, w_re, w_im);
  amp_dense.Backward(go);

  Tensor x_fft = x.Clone().set_requires_grad(true);
  Tensor amp_fft = CwtAmplitudeFftOp(x_fft, shared);
  amp_fft.Backward(go);

  ExpectRelClose(amp_fft, amp_dense, 1e-4f, "forward amplitudes");
  ExpectRelClose(x_fft.grad(), x_dense.grad(), 1e-4f, "input gradients");
}

// ---------------------------------------------------------------------------
// FFT-vs-dense oracle
// ---------------------------------------------------------------------------

TEST(CwtFftOracleTest, ForwardAndGradMatchDenseOnPow2Length) {
  CompareFftAgainstDense(SmallBank(8), /*b=*/2, /*t_len=*/64, /*d=*/3,
                         /*pad_to_power_of_two=*/true, /*seed=*/11);
}

TEST(CwtFftOracleTest, ForwardAndGradMatchDenseOnBluesteinLength) {
  // T = 96 with exact-length padding lands on a non-power-of-two transform,
  // pushing the whole op through the Bluestein FFT.
  CompareFftAgainstDense(SmallBank(6), /*b=*/2, /*t_len=*/96, /*d=*/2,
                         /*pad_to_power_of_two=*/false, /*seed=*/12);
}

TEST(CwtFftOracleTest, ForwardAndGradMatchDenseHigherOrderBank) {
  CompareFftAgainstDense(SmallBank(5, /*order=*/2), /*b=*/1, /*t_len=*/50,
                         /*d=*/2, /*pad_to_power_of_two=*/true, /*seed=*/13);
}

TEST(CwtFftOracleTest, ZeroInputMatchesDenseEpsFloor) {
  // At x = 0 both responses vanish and the amplitude sits on the eps floor
  // sqrt(eps); the gradient must stay finite (zero) rather than 0/0.
  WaveletBank bank = SmallBank(4);
  const int64_t t_len = 32;
  auto [w_re, w_im] = BuildCwtMatrices(bank, t_len);
  auto plan =
      std::make_shared<const CwtFftPlan>(BuildCwtFftPlan(bank, t_len));

  Tensor x = Tensor::Zeros({1, t_len, 2}).set_requires_grad(true);
  Tensor amp = CwtAmplitudeFftOp(x, plan);
  const float floor = std::sqrt(1e-8f);
  for (int64_t i = 0; i < amp.numel(); ++i) {
    EXPECT_NEAR(amp.data()[i], floor, 1e-6f);
  }
  amp.Backward(Tensor::Ones(amp.shape()));
  for (int64_t i = 0; i < x.grad().numel(); ++i) {
    EXPECT_TRUE(std::isfinite(x.grad().data()[i]));
    EXPECT_NEAR(x.grad().data()[i], 0.0f, 1e-6f);
  }

  Tensor xd = Tensor::Zeros({1, t_len, 2}).set_requires_grad(true);
  Tensor amp_dense = CwtAmplitudeOp(xd, w_re, w_im);
  ExpectRelClose(amp, amp_dense, 1e-4f, "eps-floor amplitudes");
}

TEST(CwtFftOracleTest, CwtAmplitudeFftOpGradCheck) {
  ThreadPool::SetGlobalNumThreads(1);
  WaveletBank bank = SmallBank(4);
  auto plan = std::make_shared<const CwtFftPlan>(BuildCwtFftPlan(bank, 12));
  Rng rng(21);
  Tensor x = Tensor::Randn({1, 12, 2}, &rng);
  auto fn = [&](const std::vector<Tensor>& in) {
    return Sum(CwtAmplitudeFftOp(in[0], plan, 1e-4f));
  };
  auto r = CheckGradients(fn, {x}, 1e-2f, 5e-2f);
  EXPECT_TRUE(r.ok) << r.message;
}

// ---------------------------------------------------------------------------
// Shape validation regressions
// ---------------------------------------------------------------------------

TEST(CwtOpValidationTest, MismatchedImagMatricesDie) {
  // Regression: CwtAmplitudeOp validated w_re but accepted a w_im of any
  // shape, deferring the failure (or a silent broadcast) to MatMul.
  WaveletBank bank = SmallBank(4);
  auto [w_re, w_im] = BuildCwtMatrices(bank, 16);
  Rng rng(5);
  Tensor x = Tensor::Randn({1, 16, 2}, &rng);
  Tensor bad_im = Tensor::Zeros({bank.num_subbands(), 16, 8});
  EXPECT_DEATH(CwtAmplitudeOp(x, w_re, bad_im), "w_im");
  Tensor bad_rank = Tensor::Zeros({16, 16});
  EXPECT_DEATH(CwtAmplitudeOp(x, w_re, bad_rank), "CHECK failed");
}

TEST(CwtOpValidationTest, FftPlanSequenceLengthMismatchDies) {
  WaveletBank bank = SmallBank(4);
  auto plan = std::make_shared<const CwtFftPlan>(BuildCwtFftPlan(bank, 16));
  Rng rng(6);
  Tensor x = Tensor::Randn({1, 24, 2}, &rng);
  EXPECT_DEATH(CwtAmplitudeFftOp(x, plan), "sequence length");
}

// ---------------------------------------------------------------------------
// Shared plan cache
// ---------------------------------------------------------------------------

TEST(CwtPlanCacheTest, EquivalentBanksShareOnePlan) {
  TransformCache::Global()->Clear();
  WaveletBank bank_a = SmallBank(6);
  WaveletBank bank_b = SmallBank(6);  // equal content, distinct instance
  EXPECT_EQ(WaveletBankFingerprint(bank_a), WaveletBankFingerprint(bank_b));

  auto dense_a = GetDenseCwtPlan(bank_a, 48);
  auto dense_b = GetDenseCwtPlan(bank_b, 48);
  EXPECT_EQ(dense_a.get(), dense_b.get());

  auto fft_a = GetFftCwtPlan(bank_a, 48);
  auto fft_b = GetFftCwtPlan(bank_b, 48);
  EXPECT_EQ(fft_a.get(), fft_b.get());

  EXPECT_EQ(TransformCache::Global()->size(), 2);
  EXPECT_GT(TransformCache::Global()->bytes(), 0);
}

TEST(CwtPlanCacheTest, DistinctKeysGetDistinctPlans) {
  TransformCache::Global()->Clear();
  WaveletBank bank = SmallBank(6);
  WaveletBank other = SmallBank(6, /*order=*/2);
  EXPECT_NE(WaveletBankFingerprint(bank), WaveletBankFingerprint(other));

  auto p1 = GetFftCwtPlan(bank, 48);
  auto p2 = GetFftCwtPlan(bank, 96);      // different seq_len
  auto p3 = GetFftCwtPlan(other, 48);     // different bank content
  auto p4 = GetFftCwtPlan(bank, 48, /*pad_to_power_of_two=*/false);
  EXPECT_NE(p1.get(), p2.get());
  EXPECT_NE(p1.get(), p3.get());
  EXPECT_NE(p1.get(), p4.get());
  EXPECT_EQ(TransformCache::Global()->size(), 4);
}

// ---------------------------------------------------------------------------
// Thread-count determinism (bitwise, 1 thread vs oversubscribed 8)
// ---------------------------------------------------------------------------

class CwtFftThreadDeterminismTest : public ::testing::Test {
 protected:
  void TearDown() override { ThreadPool::SetGlobalNumThreads(1); }
};

TEST_F(CwtFftThreadDeterminismTest, FftOpForwardAndGrad) {
  WaveletBank bank = SmallBank(6);
  auto plan = std::make_shared<const CwtFftPlan>(BuildCwtFftPlan(bank, 48));
  auto run = [&] {
    Rng rng(41);
    Tensor x = Tensor::Randn({2, 48, 3}, &rng).set_requires_grad(true);
    Tensor amp = CwtAmplitudeFftOp(x, plan);
    Tensor go = Tensor::Randn(amp.shape(), &rng);
    amp.Backward(go);
    return std::pair<Tensor, Tensor>{amp, x.grad()};
  };
  ThreadPool::SetGlobalNumThreads(1);
  auto [amp1, gx1] = run();
  ThreadPool::SetGlobalNumThreads(8);
  auto [amp8, gx8] = run();
  ExpectBitwiseEqual(amp1, amp8);
  ExpectBitwiseEqual(gx1, gx8);
}

TEST_F(CwtFftThreadDeterminismTest, IwtAndIwtComplex) {
  // Regression: Iwt / IwtComplex ran serial band loops; the parallel [T*C]
  // fan-out must keep the serial accumulation order per element.
  WaveletBank bank = SmallBank(10);
  Rng rng(42);
  Tensor x = Tensor::Randn({192, 3}, &rng);

  ThreadPool::SetGlobalNumThreads(1);
  Tensor re, im;
  CwtComplex(x, bank, &re, &im);
  Tensor amp = CwtAmplitude(x, bank);
  Tensor iwt1 = Iwt(amp, bank);
  Tensor iwtc1 = IwtComplex(re, im, bank);

  ThreadPool::SetGlobalNumThreads(8);
  Tensor iwt8 = Iwt(amp, bank);
  Tensor iwtc8 = IwtComplex(re, im, bank);

  ExpectBitwiseEqual(iwt1, iwt8);
  ExpectBitwiseEqual(iwtc1, iwtc8);
}

// ---------------------------------------------------------------------------
// Period ranking determinism
// ---------------------------------------------------------------------------

TEST(PeriodTieBreakTest, EqualAmplitudesRankByLowerFrequency) {
  // A unit impulse has an exactly flat DFT magnitude (every bin 1.0 before
  // scaling), so all non-DC bins tie. The comparator must order ties by
  // lower frequency instead of leaving the order to std::sort.
  const int64_t t_len = 64;
  std::vector<float> data(static_cast<size_t>(t_len), 0.0f);
  data[0] = 1.0f;
  Tensor x = Tensor::FromData(std::move(data), {t_len, 1});
  std::vector<DetectedPeriod> top = DetectTopKPeriods(x, 5);
  ASSERT_EQ(top.size(), 5u);
  for (size_t i = 0; i < top.size(); ++i) {
    EXPECT_EQ(top[i].frequency, static_cast<int64_t>(i) + 1);
  }
  for (size_t i = 1; i < top.size(); ++i) {
    EXPECT_DOUBLE_EQ(top[i].amplitude, top[0].amplitude);
  }
}

}  // namespace
}  // namespace ts3net
