// Flight recorder: ring wraparound, seqlock consistency under load, and the
// SLO-breach auto-dump (driven by an injected TickClock so window math is
// deterministic — see tests/README.md).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/obs/json.h"
#include "common/obs/metrics.h"
#include "common/obs/rolling.h"
#include "serve/flight_recorder.h"

namespace ts3net {
namespace serve {
namespace {

class FakeClock : public obs::TickClock {
 public:
  int64_t NowNs() override { return now_ns_.load(std::memory_order_relaxed); }
  void Set(int64_t ns) { now_ns_.store(ns, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> now_ns_{0};
};

RequestRecord MakeRecord(int64_t id) {
  // Every field is a function of the id, so a reader can detect tearing.
  RequestRecord r;
  r.request_id = id;
  r.arrival_ns = id * 1000;
  r.queue_wait_us = id + 1;
  r.exec_us = id + 2;
  r.latency_us = id + 3;
  r.batch_size = static_cast<int32_t>(id % 64);
  r.compiled = (id % 2) == 0;
  r.outcome = RequestOutcome::kOk;
  return r;
}

std::string ReadFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return "";
  std::string out;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

TEST(FlightRecorderTest, RetainsMostRecentOldestFirst) {
  FlightRecorderOptions options;
  options.capacity = 4;
  FlightRecorder recorder(options);

  for (int64_t id = 1; id <= 10; ++id) recorder.Record(MakeRecord(id));

  EXPECT_EQ(recorder.total_recorded(), 10);
  std::vector<RequestRecord> records = recorder.Snapshot();
  ASSERT_EQ(records.size(), 4u);
  for (size_t i = 0; i < records.size(); ++i) {
    const int64_t want_id = 7 + static_cast<int64_t>(i);
    EXPECT_EQ(records[i].request_id, want_id);
    EXPECT_EQ(records[i].arrival_ns, want_id * 1000);
    EXPECT_EQ(records[i].latency_us, want_id + 3);
  }
}

TEST(FlightRecorderTest, SnapshotBeforeWraparoundReturnsAll) {
  FlightRecorderOptions options;
  options.capacity = 8;
  FlightRecorder recorder(options);
  recorder.Record(MakeRecord(1));
  recorder.Record(MakeRecord(2));
  std::vector<RequestRecord> records = recorder.Snapshot();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].request_id, 1);
  EXPECT_EQ(records[1].request_id, 2);
}

TEST(FlightRecorderTest, MintIdIsMonotonic) {
  FlightRecorder recorder;
  const int64_t a = recorder.MintId();
  const int64_t b = recorder.MintId();
  EXPECT_LT(a, b);
}

TEST(FlightRecorderTest, DumpJsonIsValidAndComplete) {
  FlightRecorderOptions options;
  options.capacity = 4;
  FlightRecorder recorder(options);
  RequestRecord r = MakeRecord(42);
  r.outcome = RequestOutcome::kError;
  recorder.Record(r);

  const std::string json = recorder.DumpJson();
  std::string error;
  EXPECT_TRUE(obs::JsonValidate(json, &error)) << error;
  EXPECT_NE(json.find("\"kind\":\"ts3_flight_recorder\""), std::string::npos);
  EXPECT_NE(json.find("\"schema_version\":1"), std::string::npos);
  EXPECT_NE(json.find("\"request_id\":42"), std::string::npos);
  EXPECT_NE(json.find("\"outcome\":\"error\""), std::string::npos);
}

TEST(FlightRecorderTest, NoTornRecordsUnderConcurrentWrites) {
  FlightRecorderOptions options;
  options.capacity = 16;  // small ring => constant wraparound pressure
  FlightRecorder recorder(options);

  std::atomic<bool> stop{false};
  std::atomic<int64_t> next{1};
  constexpr int kWriters = 4;
  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&] {
      for (int i = 0; i < 20000; ++i) {
        recorder.Record(
            MakeRecord(next.fetch_add(1, std::memory_order_relaxed)));
      }
    });
  }
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      for (const RequestRecord& r : recorder.Snapshot()) {
        // A torn read would mix fields from two different ids.
        ASSERT_EQ(r.arrival_ns, r.request_id * 1000);
        ASSERT_EQ(r.queue_wait_us, r.request_id + 1);
        ASSERT_EQ(r.exec_us, r.request_id + 2);
        ASSERT_EQ(r.latency_us, r.request_id + 3);
      }
    }
  });
  for (std::thread& t : writers) t.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  EXPECT_EQ(recorder.total_recorded(), int64_t{kWriters} * 20000);
  // Quiescent snapshot: nothing mid-write, so the full ring is returned.
  EXPECT_EQ(recorder.Snapshot().size(), 16u);
}

TEST(FlightRecorderTest, SloBreachTriggersOneAutoDumpPerWindow) {
  auto* registry = obs::MetricsRegistry::Global();
  registry->ResetForTest();
  const std::string dump_path =
      ::testing::TempDir() + "/flight_slo_dump.json";
  std::remove(dump_path.c_str());

  FakeClock clock;
  clock.Set(1);  // keep epoch 0 distinct from last_dump_epoch_'s -1 sentinel
  FlightRecorderOptions options;
  options.capacity = 32;
  options.slo_latency_us = 1000;
  options.slo_breach_k = 3;
  options.slo_dump_path = dump_path;
  options.window.num_buckets = 4;
  options.window.bucket_width_ns = 1000000;  // 4ms window
  options.window.clock = &clock;
  FlightRecorder recorder(options);

  // Two breaches: under k, no dump yet.
  for (int64_t id = 1; id <= 2; ++id) {
    RequestRecord r = MakeRecord(id);
    r.latency_us = 5000;
    recorder.Record(r);
  }
  EXPECT_EQ(registry->counter("serve/slo_breaches")->value(), 2);
  EXPECT_EQ(registry->counter("serve/slo_dumps")->value(), 0);
  EXPECT_EQ(ReadFile(dump_path), "");

  // Third breach crosses k: exactly one dump, valid JSON.
  RequestRecord r3 = MakeRecord(3);
  r3.latency_us = 5000;
  recorder.Record(r3);
  EXPECT_EQ(registry->counter("serve/slo_dumps")->value(), 1);
  const std::string dump = ReadFile(dump_path);
  std::string error;
  EXPECT_TRUE(obs::JsonValidate(dump, &error)) << error;
  EXPECT_NE(dump.find("ts3_flight_recorder"), std::string::npos);

  // More breaches in the same window: rate-limited, still one dump.
  for (int64_t id = 4; id <= 8; ++id) {
    RequestRecord r = MakeRecord(id);
    r.latency_us = 5000;
    recorder.Record(r);
  }
  EXPECT_EQ(registry->counter("serve/slo_dumps")->value(), 1);

  // Next window (clock advanced past the 4ms window): breaches accumulate
  // to k again and a second dump fires.
  clock.Set(options.window.num_buckets * options.window.bucket_width_ns + 1);
  for (int64_t id = 9; id <= 11; ++id) {
    RequestRecord r = MakeRecord(id);
    r.latency_us = 5000;
    recorder.Record(r);
  }
  EXPECT_EQ(registry->counter("serve/slo_dumps")->value(), 2);

  registry->ResetForTest();
  std::remove(dump_path.c_str());
}

TEST(FlightRecorderTest, FastRequestsNeverBreach) {
  auto* registry = obs::MetricsRegistry::Global();
  registry->ResetForTest();
  FakeClock clock;
  FlightRecorderOptions options;
  options.slo_latency_us = 1000;
  options.slo_breach_k = 1;
  options.window.clock = &clock;
  FlightRecorder recorder(options);
  for (int64_t id = 1; id <= 50; ++id) {
    recorder.Record(MakeRecord(id));  // latency_us = id + 3 <= 53 << 1000
  }
  EXPECT_EQ(registry->counter("serve/slo_breaches")->value(), 0);
  registry->ResetForTest();
}

TEST(FlightRecorderTest, GlobalConfigureReplacesRecorder) {
  FlightRecorder* before = FlightRecorder::Global();
  FlightRecorderOptions options;
  options.capacity = 8;
  FlightRecorder::Configure(options);
  FlightRecorder* after = FlightRecorder::Global();
  EXPECT_NE(before, after);
  EXPECT_EQ(after->options().capacity, 8);
  EXPECT_EQ(after->total_recorded(), 0);
  FlightRecorder::Configure(FlightRecorderOptions{});  // restore defaults
}

}  // namespace
}  // namespace serve
}  // namespace ts3net
