#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic.h"
#include "data/window.h"
#include "train/experiment.h"
#include "train/metrics.h"
#include "models/registry.h"
#include "train/trainer.h"
#include "tensor/ops.h"

namespace ts3net {
namespace train {
namespace {

// ---------------------------------------------------------------------------
// MetricAccumulator
// ---------------------------------------------------------------------------

TEST(MetricsTest, KnownValues) {
  MetricAccumulator acc;
  acc.Add(Tensor::FromData({1, 2}, {2}), Tensor::FromData({0, 4}, {2}));
  EXPECT_DOUBLE_EQ(acc.Mse(), (1.0 + 4.0) / 2.0);
  EXPECT_DOUBLE_EQ(acc.Mae(), (1.0 + 2.0) / 2.0);
  EXPECT_EQ(acc.count(), 2);
}

TEST(MetricsTest, AccumulatesAcrossBatches) {
  MetricAccumulator acc;
  acc.Add(Tensor::FromData({1}, {1}), Tensor::FromData({0}, {1}));
  acc.Add(Tensor::FromData({0}, {1}), Tensor::FromData({3}, {1}));
  EXPECT_DOUBLE_EQ(acc.Mse(), (1.0 + 9.0) / 2.0);
}

TEST(MetricsTest, MaskedOnlyCountsSelectedPositions) {
  MetricAccumulator acc;
  Tensor pred = Tensor::FromData({1, 10}, {2});
  Tensor target = Tensor::FromData({0, 0}, {2});
  Tensor mask = Tensor::FromData({0, 1}, {2});
  acc.AddMasked(pred, target, mask, 0.0f);
  EXPECT_EQ(acc.count(), 1);
  EXPECT_DOUBLE_EQ(acc.Mse(), 1.0);
}

TEST(MetricsTest, EmptyAccumulatorIsNaN) {
  // NaN, not 0.0: an evaluation that scored nothing must not look perfect.
  MetricAccumulator acc;
  EXPECT_EQ(acc.count(), 0);
  EXPECT_TRUE(std::isnan(acc.Mse()));
  EXPECT_TRUE(std::isnan(acc.Mae()));
}

// ---------------------------------------------------------------------------
// Trainer (fit + early stopping)
// ---------------------------------------------------------------------------

data::SplitSeries MakeSplits(uint64_t seed = 31) {
  data::SyntheticOptions o;
  o.length = 1200;
  o.channels = 2;
  o.components = {{24.0, 1.0, 0.2, 240.0}};
  o.noise_std = 0.15;
  o.seed = seed;
  data::TimeSeries s = data::GenerateSynthetic(o);
  return SplitChronological(s, 0.7, 0.1);
}

TrainOptions FastOptions() {
  TrainOptions t;
  t.epochs = 2;
  t.batch_size = 16;
  t.lr = 3e-3f;
  t.max_batches_per_epoch = 12;
  return t;
}

TEST(TrainerTest, ForecastTrainingImprovesOverUntrainedModel) {
  data::SplitSeries split = MakeSplits();
  data::ForecastDataset train_ds(split.train.values, 24, 12);
  data::ForecastDataset val_ds(split.val.values, 24, 12);
  data::ForecastDataset test_ds(split.test.values, 24, 12);

  models::ModelConfig cfg;
  cfg.seq_len = 24;
  cfg.pred_len = 12;
  cfg.channels = 2;
  cfg.d_model = 8;
  cfg.d_ff = 8;
  cfg.num_layers = 1;
  cfg.dropout = 0.0f;
  Rng rng(32);
  auto model = models::CreateModel("DLinear", cfg, &rng);
  ASSERT_TRUE(model.ok());

  EvalResult before = EvaluateForecast(model.value().get(), test_ds, 16, 8);
  FitResult fit =
      FitForecast(model.value().get(), train_ds, val_ds, FastOptions());
  EvalResult after = EvaluateForecast(model.value().get(), test_ds, 16, 8);

  EXPECT_GE(fit.epochs_run, 1);
  EXPECT_LT(after.mse, before.mse);
}

TEST(TrainerTest, EarlyStoppingTriggersWithZeroPatience) {
  data::SplitSeries split = MakeSplits(33);
  data::ForecastDataset train_ds(split.train.values, 24, 12);
  data::ForecastDataset val_ds(split.val.values, 24, 12);
  models::ModelConfig cfg;
  cfg.seq_len = 24;
  cfg.pred_len = 12;
  cfg.channels = 2;
  Rng rng(34);
  auto model = models::CreateModel("DLinear", cfg, &rng);
  ASSERT_TRUE(model.ok());
  TrainOptions t = FastOptions();
  t.epochs = 10;
  t.patience = 1;
  t.lr = 0.0f;  // frozen model: validation loss can never improve
  FitResult fit = FitForecast(model.value().get(), train_ds, val_ds, t);
  EXPECT_EQ(fit.epochs_run, 2);
  EXPECT_TRUE(fit.early_stopped);
}

TEST(TrainerTest, FitRecordsLossCurves) {
  data::SplitSeries split = MakeSplits(35);
  data::ForecastDataset train_ds(split.train.values, 24, 12);
  data::ForecastDataset val_ds(split.val.values, 24, 12);
  models::ModelConfig cfg;
  cfg.seq_len = 24;
  cfg.pred_len = 12;
  cfg.channels = 2;
  Rng rng(36);
  auto model = models::CreateModel("LightTS", cfg, &rng);
  ASSERT_TRUE(model.ok());
  FitResult fit =
      FitForecast(model.value().get(), train_ds, val_ds, FastOptions());
  EXPECT_EQ(fit.train_losses.size(), static_cast<size_t>(fit.epochs_run));
  EXPECT_EQ(fit.val_losses.size(), static_cast<size_t>(fit.epochs_run));
}

TEST(TrainerTest, ImputationTrainingReducesMaskedError) {
  data::SplitSeries split = MakeSplits(37);
  data::ImputationDataset train_ds(split.train.values, 24, 0.25, 1);
  data::ImputationDataset val_ds(split.val.values, 24, 0.25, 2);
  data::ImputationDataset test_ds(split.test.values, 24, 0.25, 3);

  models::ModelConfig cfg;
  cfg.seq_len = 24;
  cfg.pred_len = 24;
  cfg.channels = 2;
  cfg.imputation = true;
  cfg.d_model = 8;
  cfg.num_layers = 1;
  cfg.dropout = 0.0f;
  Rng rng(38);
  auto model = models::CreateModel("TS3Net", cfg, &rng);
  ASSERT_TRUE(model.ok());

  EvalResult before = EvaluateImputation(model.value().get(), test_ds, 16, 6);
  TrainOptions t = FastOptions();
  t.max_batches_per_epoch = 10;
  FitImputation(model.value().get(), train_ds, val_ds, t);
  EvalResult after = EvaluateImputation(model.value().get(), test_ds, 16, 6);
  EXPECT_LT(after.mse, before.mse);
}

TEST(WalkForwardTest, MatchesManualNonOverlappingWindows) {
  data::SplitSeries split = MakeSplits(41);
  models::ModelConfig cfg;
  cfg.seq_len = 24;
  cfg.pred_len = 12;
  cfg.channels = 2;
  cfg.dropout = 0.0f;
  Rng rng(42);
  auto model = models::CreateModel("DLinear", cfg, &rng);
  ASSERT_TRUE(model.ok());
  model.value()->SetTraining(false);

  Tensor series = split.test.values;
  EvalResult rolled =
      EvaluateWalkForward(model.value().get(), series, 24, 12, 8);

  // Manual reference: origins 0, 12, 24, ... each scored once.
  data::ForecastDataset windows(series, 24, 12);
  MetricAccumulator acc;
  for (int64_t i = 0; i < windows.size(); i += 12) {
    Tensor x, y;
    windows.GetBatch({i}, &x, &y);
    acc.Add(model.value()->Forward(x).Detach(), y);
  }
  EXPECT_NEAR(rolled.mse, acc.Mse(), 1e-6);
  EXPECT_NEAR(rolled.mae, acc.Mae(), 1e-6);
}

TEST(WalkForwardTest, ScoresEveryHorizonPointOnce) {
  // With T = lookback + k*horizon exactly, the walk covers k origins.
  Rng rng(43);
  Tensor series = Tensor::Randn({24 + 3 * 8, 1}, &rng);
  models::ModelConfig cfg;
  cfg.seq_len = 24;
  cfg.pred_len = 8;
  cfg.channels = 1;
  Rng mr(44);
  auto model = models::CreateModel("DLinear", cfg, &mr);
  ASSERT_TRUE(model.ok());
  EvalResult r = EvaluateWalkForward(model.value().get(), series, 24, 8);
  EXPECT_GT(r.mse, 0.0);
}

// ---------------------------------------------------------------------------
// Experiment pipeline
// ---------------------------------------------------------------------------

ExperimentSpec FastSpec() {
  ExperimentSpec spec;
  spec.dataset = "ETTh1";
  spec.length_fraction = 0.08;
  spec.channel_cap = 4;
  spec.model = "DLinear";
  spec.lookback = 48;
  spec.horizon = 24;
  spec.train = FastOptions();
  return spec;
}

TEST(ExperimentTest, PrepareDataStandardizesTrainSplit) {
  auto prepared = PrepareData(FastSpec());
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  const Tensor& train = prepared.value().scaled.train.values;
  // Mean of each channel approximately 0, variance approximately 1.
  Tensor mu = Mean(train, {0});
  Tensor var = Variance(train, {0});
  for (int64_t c = 0; c < mu.numel(); ++c) {
    EXPECT_NEAR(mu.at(c), 0.0f, 1e-3f);
    EXPECT_NEAR(var.at(c), 1.0f, 1e-2f);
  }
}

TEST(ExperimentTest, ForecastCellRunsEndToEnd) {
  auto result = RunExperiment(FastSpec());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result.value().mse, 0.0);
  EXPECT_GT(result.value().mae, 0.0);
}

TEST(ExperimentTest, ImputationCellRunsEndToEnd) {
  ExperimentSpec spec = FastSpec();
  spec.mask_ratio = 0.25;
  auto result = RunExperiment(spec);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result.value().mse, 0.0);
}

TEST(ExperimentTest, UnknownDatasetPropagatesError) {
  ExperimentSpec spec = FastSpec();
  spec.dataset = "Nope";
  EXPECT_FALSE(RunExperiment(spec).ok());
}

TEST(ExperimentTest, UnknownModelPropagatesError) {
  ExperimentSpec spec = FastSpec();
  spec.model = "Nope";
  EXPECT_FALSE(RunExperiment(spec).ok());
}

TEST(ExperimentTest, NoiseInjectionChangesTrainSplitOnly) {
  ExperimentSpec clean = FastSpec();
  ExperimentSpec noisy = FastSpec();
  noisy.noise_rho = 0.1;
  auto p_clean = PrepareData(clean);
  auto p_noisy = PrepareData(noisy);
  ASSERT_TRUE(p_clean.ok() && p_noisy.ok());
  EXPECT_FALSE(AllClose(p_clean.value().scaled.train.values,
                        p_noisy.value().scaled.train.values));
  EXPECT_TRUE(AllClose(p_clean.value().scaled.test.values,
                       p_noisy.value().scaled.test.values));
}

TEST(ExperimentTest, ResultsAreReproducible) {
  ExperimentSpec spec = FastSpec();
  spec.train.max_batches_per_epoch = 5;
  auto r1 = RunExperiment(spec);
  auto r2 = RunExperiment(spec);
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_DOUBLE_EQ(r1.value().mse, r2.value().mse);
  EXPECT_DOUBLE_EQ(r1.value().mae, r2.value().mae);
}

}  // namespace
}  // namespace train
}  // namespace ts3net
