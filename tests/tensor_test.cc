#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "common/threadpool.h"
#include "tensor/gradcheck.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace ts3net {
namespace {

// ---------------------------------------------------------------------------
// Construction and introspection
// ---------------------------------------------------------------------------

TEST(TensorTest, ZerosShapeAndValues) {
  Tensor t = Tensor::Zeros({2, 3});
  EXPECT_EQ(t.ndim(), 2);
  EXPECT_EQ(t.numel(), 6);
  for (int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t.at(i), 0.0f);
}

TEST(TensorTest, FullFillsValue) {
  Tensor t = Tensor::Full({4}, 2.5f);
  for (int64_t i = 0; i < 4; ++i) EXPECT_EQ(t.at(i), 2.5f);
}

TEST(TensorTest, FromDataPreservesOrder) {
  Tensor t = Tensor::FromData({1, 2, 3, 4, 5, 6}, {2, 3});
  EXPECT_EQ(t.at(0), 1.0f);
  EXPECT_EQ(t.at(5), 6.0f);
}

TEST(TensorTest, ScalarItem) {
  EXPECT_FLOAT_EQ(Tensor::Scalar(3.5f).item(), 3.5f);
}

TEST(TensorTest, ArangeValues) {
  Tensor t = Tensor::Arange(5);
  for (int64_t i = 0; i < 5; ++i) EXPECT_EQ(t.at(i), static_cast<float>(i));
}

TEST(TensorTest, RandnIsSeeded) {
  Rng rng1(5), rng2(5);
  Tensor a = Tensor::Randn({10}, &rng1);
  Tensor b = Tensor::Randn({10}, &rng2);
  EXPECT_TRUE(AllClose(a, b));
}

TEST(TensorTest, NegativeDimIndexing) {
  Tensor t = Tensor::Zeros({2, 3, 4});
  EXPECT_EQ(t.dim(-1), 4);
  EXPECT_EQ(t.dim(-3), 2);
}

TEST(TensorTest, CopyIsShallowCloneIsDeep) {
  Tensor a = Tensor::Zeros({3});
  Tensor shallow = a;
  Tensor deep = a.Clone();
  a.data()[0] = 7.0f;
  EXPECT_EQ(shallow.at(0), 7.0f);
  EXPECT_EQ(deep.at(0), 0.0f);
}

TEST(TensorTest, NumElementsOfEmptyShapeIsOne) {
  EXPECT_EQ(NumElements({}), 1);
  EXPECT_EQ(NumElements({0, 5}), 0);
}

TEST(TensorDeathTest, FromDataSizeMismatchAborts) {
  EXPECT_DEATH(Tensor::FromData({1, 2, 3}, {2, 2}), "CHECK failed");
}

TEST(TensorDeathTest, ItemOnVectorAborts) {
  Tensor t = Tensor::Zeros({3});
  EXPECT_DEATH(t.item(), "CHECK failed");
}

// ---------------------------------------------------------------------------
// Elementwise ops (forward semantics)
// ---------------------------------------------------------------------------

TEST(ElementwiseTest, AddSameShape) {
  Tensor a = Tensor::FromData({1, 2, 3}, {3});
  Tensor b = Tensor::FromData({10, 20, 30}, {3});
  Tensor c = a + b;
  EXPECT_TRUE(AllClose(c, Tensor::FromData({11, 22, 33}, {3})));
}

TEST(ElementwiseTest, SubMulDiv) {
  Tensor a = Tensor::FromData({4, 9}, {2});
  Tensor b = Tensor::FromData({2, 3}, {2});
  EXPECT_TRUE(AllClose(a - b, Tensor::FromData({2, 6}, {2})));
  EXPECT_TRUE(AllClose(a * b, Tensor::FromData({8, 27}, {2})));
  EXPECT_TRUE(AllClose(a / b, Tensor::FromData({2, 3}, {2})));
}

TEST(ElementwiseTest, ScalarOps) {
  Tensor a = Tensor::FromData({1, 2}, {2});
  EXPECT_TRUE(AllClose(a + 1.0f, Tensor::FromData({2, 3}, {2})));
  EXPECT_TRUE(AllClose(2.0f * a, Tensor::FromData({2, 4}, {2})));
  EXPECT_TRUE(AllClose(a / 2.0f, Tensor::FromData({0.5f, 1.0f}, {2})));
}

TEST(ElementwiseTest, BroadcastRowVector) {
  Tensor a = Tensor::FromData({1, 2, 3, 4, 5, 6}, {2, 3});
  Tensor b = Tensor::FromData({10, 20, 30}, {3});
  Tensor c = a + b;
  EXPECT_TRUE(AllClose(c, Tensor::FromData({11, 22, 33, 14, 25, 36}, {2, 3})));
}

TEST(ElementwiseTest, BroadcastColumnVector) {
  Tensor a = Tensor::FromData({1, 2, 3, 4, 5, 6}, {2, 3});
  Tensor b = Tensor::FromData({100, 200}, {2, 1});
  Tensor c = a + b;
  EXPECT_TRUE(
      AllClose(c, Tensor::FromData({101, 102, 103, 204, 205, 206}, {2, 3})));
}

TEST(ElementwiseTest, BroadcastBothSides) {
  Tensor a = Tensor::FromData({1, 2}, {2, 1});
  Tensor b = Tensor::FromData({10, 20, 30}, {1, 3});
  Tensor c = a * b;
  EXPECT_EQ(c.shape(), (Shape{2, 3}));
  EXPECT_TRUE(AllClose(c, Tensor::FromData({10, 20, 30, 20, 40, 60}, {2, 3})));
}

TEST(ElementwiseTest, MaximumMinimum) {
  Tensor a = Tensor::FromData({1, 5}, {2});
  Tensor b = Tensor::FromData({3, 2}, {2});
  EXPECT_TRUE(AllClose(Maximum(a, b), Tensor::FromData({3, 5}, {2})));
  EXPECT_TRUE(AllClose(Minimum(a, b), Tensor::FromData({1, 2}, {2})));
}

TEST(ElementwiseDeathTest, IncompatibleBroadcastAborts) {
  Tensor a = Tensor::Zeros({2, 3});
  Tensor b = Tensor::Zeros({4});
  EXPECT_DEATH(Add(a, b), "cannot broadcast");
}

TEST(BroadcastShapesTest, Rules) {
  EXPECT_EQ(BroadcastShapes({2, 3}, {3}), (Shape{2, 3}));
  EXPECT_EQ(BroadcastShapes({2, 1, 4}, {3, 1}), (Shape{2, 3, 4}));
  EXPECT_EQ(BroadcastShapes({}, {5}), (Shape{5}));
}

// ---------------------------------------------------------------------------
// Unary ops
// ---------------------------------------------------------------------------

TEST(UnaryTest, ExpLogRoundTrip) {
  Tensor a = Tensor::FromData({0.5f, 1.0f, 2.0f}, {3});
  EXPECT_TRUE(AllClose(Log(Exp(a)), a, 1e-4f, 1e-5f));
}

TEST(UnaryTest, SqrtSquare) {
  Tensor a = Tensor::FromData({4.0f, 9.0f}, {2});
  EXPECT_TRUE(AllClose(Sqrt(a), Tensor::FromData({2, 3}, {2})));
  EXPECT_TRUE(AllClose(Square(a), Tensor::FromData({16, 81}, {2})));
}

TEST(UnaryTest, ReluClampsNegatives) {
  Tensor a = Tensor::FromData({-1, 0, 2}, {3});
  EXPECT_TRUE(AllClose(Relu(a), Tensor::FromData({0, 0, 2}, {3})));
}

TEST(UnaryTest, SigmoidRange) {
  Tensor a = Tensor::FromData({-100, 0, 100}, {3});
  Tensor s = Sigmoid(a);
  EXPECT_NEAR(s.at(0), 0.0f, 1e-6f);
  EXPECT_NEAR(s.at(1), 0.5f, 1e-6f);
  EXPECT_NEAR(s.at(2), 1.0f, 1e-6f);
}

TEST(UnaryTest, GeluKnownValues) {
  Tensor a = Tensor::FromData({0.0f, 1.0f, -1.0f}, {3});
  Tensor g = Gelu(a);
  EXPECT_NEAR(g.at(0), 0.0f, 1e-6f);
  EXPECT_NEAR(g.at(1), 0.8412f, 1e-3f);
  EXPECT_NEAR(g.at(2), -0.1588f, 1e-3f);
}

TEST(UnaryTest, AbsNeg) {
  Tensor a = Tensor::FromData({-2, 3}, {2});
  EXPECT_TRUE(AllClose(Abs(a), Tensor::FromData({2, 3}, {2})));
  EXPECT_TRUE(AllClose(-a, Tensor::FromData({2, -3}, {2})));
}

TEST(UnaryTest, PowIntegerExponent) {
  Tensor a = Tensor::FromData({2, 3}, {2});
  EXPECT_TRUE(AllClose(Pow(a, 3.0f), Tensor::FromData({8, 27}, {2})));
}

TEST(UnaryTest, SinCosIdentity) {
  Tensor a = Tensor::FromData({0.3f, 1.2f, -0.7f}, {3});
  Tensor one = Square(Sin(a)) + Square(Cos(a));
  EXPECT_TRUE(AllClose(one, Tensor::Ones({3}), 1e-5f, 1e-6f));
}

// ---------------------------------------------------------------------------
// Shape ops
// ---------------------------------------------------------------------------

TEST(ShapeOpsTest, ReshapeKeepsData) {
  Tensor a = Tensor::FromData({1, 2, 3, 4, 5, 6}, {2, 3});
  Tensor b = Reshape(a, {3, 2});
  EXPECT_EQ(b.shape(), (Shape{3, 2}));
  EXPECT_EQ(b.at(5), 6.0f);
}

TEST(ShapeOpsTest, ReshapeInfersDim) {
  Tensor a = Tensor::Zeros({2, 3, 4});
  EXPECT_EQ(Reshape(a, {6, -1}).shape(), (Shape{6, 4}));
  EXPECT_EQ(Reshape(a, {-1}).shape(), (Shape{24}));
}

TEST(ShapeOpsTest, Transpose2d) {
  Tensor a = Tensor::FromData({1, 2, 3, 4, 5, 6}, {2, 3});
  Tensor t = Transpose(a, 0, 1);
  EXPECT_EQ(t.shape(), (Shape{3, 2}));
  EXPECT_TRUE(AllClose(t, Tensor::FromData({1, 4, 2, 5, 3, 6}, {3, 2})));
}

TEST(ShapeOpsTest, PermuteThreeAxes) {
  Tensor a = Tensor::Arange(24);
  a = Reshape(a, {2, 3, 4});
  Tensor p = Permute(a, {2, 0, 1});
  EXPECT_EQ(p.shape(), (Shape{4, 2, 3}));
  // p[i][j][k] == a[j][k][i]
  // p[1][1][2] -> a[1][2][1] = 1*12 + 2*4 + 1 = 21
  EXPECT_EQ(p.at((1 * 2 + 1) * 3 + 2), 21.0f);
}

TEST(ShapeOpsTest, PermuteRoundTrip) {
  Rng rng(3);
  Tensor a = Tensor::Randn({2, 3, 4, 5}, &rng);
  Tensor p = Permute(a, {3, 1, 0, 2});
  Tensor back = Permute(p, {2, 1, 3, 0});
  EXPECT_TRUE(AllClose(back, a));
}

TEST(ShapeOpsTest, SliceMiddle) {
  Tensor a = Tensor::Arange(10);
  Tensor s = Slice(a, 0, 3, 4);
  EXPECT_TRUE(AllClose(s, Tensor::FromData({3, 4, 5, 6}, {4})));
}

TEST(ShapeOpsTest, SliceAlongInnerAxis) {
  Tensor a = Reshape(Tensor::Arange(12), {3, 4});
  Tensor s = Slice(a, 1, 1, 2);
  EXPECT_EQ(s.shape(), (Shape{3, 2}));
  EXPECT_TRUE(AllClose(s, Tensor::FromData({1, 2, 5, 6, 9, 10}, {3, 2})));
}

TEST(ShapeOpsTest, ConcatAxis0) {
  Tensor a = Tensor::FromData({1, 2}, {1, 2});
  Tensor b = Tensor::FromData({3, 4, 5, 6}, {2, 2});
  Tensor c = Concat({a, b}, 0);
  EXPECT_EQ(c.shape(), (Shape{3, 2}));
  EXPECT_TRUE(AllClose(c, Tensor::FromData({1, 2, 3, 4, 5, 6}, {3, 2})));
}

TEST(ShapeOpsTest, ConcatAxis1) {
  Tensor a = Tensor::FromData({1, 2}, {2, 1});
  Tensor b = Tensor::FromData({3, 4}, {2, 1});
  Tensor c = Concat({a, b}, 1);
  EXPECT_TRUE(AllClose(c, Tensor::FromData({1, 3, 2, 4}, {2, 2})));
}

TEST(ShapeOpsTest, StackCreatesNewAxis) {
  Tensor a = Tensor::FromData({1, 2}, {2});
  Tensor b = Tensor::FromData({3, 4}, {2});
  Tensor s = StackTensors({a, b}, 0);
  EXPECT_EQ(s.shape(), (Shape{2, 2}));
  EXPECT_TRUE(AllClose(s, Tensor::FromData({1, 2, 3, 4}, {2, 2})));
}

TEST(ShapeOpsTest, PadConstant) {
  Tensor a = Tensor::FromData({1, 2}, {2});
  Tensor p = Pad(a, 0, 1, 2, -1.0f);
  EXPECT_TRUE(AllClose(p, Tensor::FromData({-1, 1, 2, -1, -1}, {5})));
}

TEST(ShapeOpsTest, ReplicatePadEdges) {
  Tensor a = Tensor::FromData({1, 2, 3}, {1, 3, 1});
  Tensor p = ReplicatePad(a, 1, 2, 1);
  EXPECT_TRUE(AllClose(p, Tensor::FromData({1, 1, 1, 2, 3, 3}, {1, 6, 1})));
}

TEST(ShapeOpsTest, RepeatTiles) {
  Tensor a = Tensor::FromData({1, 2}, {2});
  Tensor r = Repeat(a, 0, 3);
  EXPECT_TRUE(AllClose(r, Tensor::FromData({1, 2, 1, 2, 1, 2}, {6})));
}

TEST(ShapeOpsTest, UnsqueezeSqueezeRoundTrip) {
  Tensor a = Tensor::Zeros({2, 3});
  Tensor u = Unsqueeze(a, 1);
  EXPECT_EQ(u.shape(), (Shape{2, 1, 3}));
  EXPECT_EQ(Squeeze(u, 1).shape(), (Shape{2, 3}));
}

// ---------------------------------------------------------------------------
// Reductions
// ---------------------------------------------------------------------------

TEST(ReduceTest, SumAll) {
  Tensor a = Tensor::FromData({1, 2, 3, 4}, {2, 2});
  EXPECT_FLOAT_EQ(Sum(a).item(), 10.0f);
}

TEST(ReduceTest, SumAxis0) {
  Tensor a = Tensor::FromData({1, 2, 3, 4, 5, 6}, {2, 3});
  Tensor s = Sum(a, {0});
  EXPECT_EQ(s.shape(), (Shape{3}));
  EXPECT_TRUE(AllClose(s, Tensor::FromData({5, 7, 9}, {3})));
}

TEST(ReduceTest, SumAxis1Keepdim) {
  Tensor a = Tensor::FromData({1, 2, 3, 4, 5, 6}, {2, 3});
  Tensor s = Sum(a, {1}, /*keepdim=*/true);
  EXPECT_EQ(s.shape(), (Shape{2, 1}));
  EXPECT_TRUE(AllClose(s, Tensor::FromData({6, 15}, {2, 1})));
}

TEST(ReduceTest, SumMultipleAxes) {
  Tensor a = Reshape(Tensor::Arange(24), {2, 3, 4});
  Tensor s = Sum(a, {0, 2});
  EXPECT_EQ(s.shape(), (Shape{3}));
  // axis-1 groups: rows {0..3,12..15}, {4..7,16..19}, {8..11,20..23}
  EXPECT_TRUE(AllClose(s, Tensor::FromData({60, 92, 124}, {3})));
}

TEST(ReduceTest, MeanMatchesSum) {
  Tensor a = Tensor::FromData({2, 4, 6, 8}, {4});
  EXPECT_FLOAT_EQ(Mean(a).item(), 5.0f);
}

TEST(ReduceTest, VarianceOfConstantIsZero) {
  Tensor a = Tensor::Full({5}, 3.0f);
  EXPECT_NEAR(Variance(a, {0}).item(), 0.0f, 1e-7f);
}

TEST(ReduceTest, VarianceKnown) {
  Tensor a = Tensor::FromData({1, 2, 3, 4}, {4});
  EXPECT_NEAR(Variance(a, {0}).item(), 1.25f, 1e-6f);
}

TEST(ReduceTest, MaxAlongAxis) {
  Tensor a = Tensor::FromData({1, 7, 3, 4, 5, 2}, {2, 3});
  Tensor m = Max(a, 1);
  EXPECT_TRUE(AllClose(m, Tensor::FromData({7, 5}, {2})));
}

TEST(ReduceTest, SoftmaxSumsToOne) {
  Rng rng(31);
  Tensor a = Tensor::Randn({4, 7}, &rng);
  Tensor s = Softmax(a, 1);
  Tensor sums = Sum(s, {1});
  EXPECT_TRUE(AllClose(sums, Tensor::Ones({4}), 1e-5f, 1e-6f));
}

TEST(ReduceTest, SoftmaxStableForLargeInputs) {
  Tensor a = Tensor::FromData({1000.0f, 1000.0f}, {2});
  Tensor s = Softmax(a, 0);
  EXPECT_NEAR(s.at(0), 0.5f, 1e-6f);
}

TEST(ReduceTest, SoftmaxInnerAxis) {
  Tensor a = Tensor::FromData({0, 0, 0, 0, 0, 0}, {2, 3});
  Tensor s = Softmax(a, 0);
  for (int64_t i = 0; i < 6; ++i) EXPECT_NEAR(s.at(i), 0.5f, 1e-6f);
}

// ---------------------------------------------------------------------------
// MatMul
// ---------------------------------------------------------------------------

TEST(MatMulTest, TwoByTwo) {
  Tensor a = Tensor::FromData({1, 2, 3, 4}, {2, 2});
  Tensor b = Tensor::FromData({5, 6, 7, 8}, {2, 2});
  Tensor c = MatMul(a, b);
  EXPECT_TRUE(AllClose(c, Tensor::FromData({19, 22, 43, 50}, {2, 2})));
}

TEST(MatMulTest, RectangularShapes) {
  Tensor a = Tensor::Ones({3, 4});
  Tensor b = Tensor::Ones({4, 5});
  Tensor c = MatMul(a, b);
  EXPECT_EQ(c.shape(), (Shape{3, 5}));
  EXPECT_TRUE(AllClose(c, Tensor::Full({3, 5}, 4.0f)));
}

TEST(MatMulTest, BatchedEqualBatch) {
  Rng rng(37);
  Tensor a = Tensor::Randn({2, 3, 4}, &rng);
  Tensor b = Tensor::Randn({2, 4, 5}, &rng);
  Tensor c = MatMul(a, b);
  EXPECT_EQ(c.shape(), (Shape{2, 3, 5}));
  // Check one element by hand: c[1,2,3] = sum_k a[1,2,k]*b[1,k,3]
  float expect = 0;
  for (int k = 0; k < 4; ++k) {
    expect += a.at((1 * 3 + 2) * 4 + k) * b.at((1 * 4 + k) * 5 + 3);
  }
  EXPECT_NEAR(c.at((1 * 3 + 2) * 5 + 3), expect, 1e-5f);
}

TEST(MatMulTest, BatchBroadcastRhs2d) {
  Rng rng(41);
  Tensor a = Tensor::Randn({3, 2, 4}, &rng);
  Tensor b = Tensor::Randn({4, 6}, &rng);
  Tensor c = MatMul(a, b);
  EXPECT_EQ(c.shape(), (Shape{3, 2, 6}));
  // Equals slicing each batch and multiplying.
  Tensor a0 = Reshape(Slice(a, 0, 0, 1), {2, 4});
  Tensor c0 = MatMul(a0, b);
  for (int i = 0; i < 12; ++i) EXPECT_NEAR(c.at(i), c0.at(i), 1e-5f);
}

TEST(MatMulTest, FourDimBatch) {
  Rng rng(43);
  Tensor a = Tensor::Randn({2, 3, 4, 5}, &rng);
  Tensor b = Tensor::Randn({2, 3, 5, 2}, &rng);
  Tensor c = MatMul(a, b);
  EXPECT_EQ(c.shape(), (Shape{2, 3, 4, 2}));
}

TEST(MatMulDeathTest, InnerDimMismatchAborts) {
  Tensor a = Tensor::Zeros({2, 3});
  Tensor b = Tensor::Zeros({4, 2});
  EXPECT_DEATH(MatMul(a, b), "matmul inner dim mismatch");
}

// ---------------------------------------------------------------------------
// Conv2d / MovingAvg
// ---------------------------------------------------------------------------

TEST(Conv2dTest, IdentityKernel) {
  Rng rng(47);
  Tensor x = Tensor::Randn({1, 1, 4, 4}, &rng);
  Tensor w = Tensor::FromData({1}, {1, 1, 1, 1});
  Tensor y = Conv2d(x, w, Tensor(), 0, 0);
  EXPECT_TRUE(AllClose(y, x));
}

TEST(Conv2dTest, SamePaddingKeepsSize) {
  Tensor x = Tensor::Ones({1, 1, 5, 7});
  Rng rng(53);
  Tensor w = Tensor::Randn({3, 1, 3, 3}, &rng);
  Tensor y = Conv2d(x, w, Tensor(), 1, 1);
  EXPECT_EQ(y.shape(), (Shape{1, 3, 5, 7}));
}

TEST(Conv2dTest, BoxFilterOnOnes) {
  Tensor x = Tensor::Ones({1, 1, 4, 4});
  Tensor w = Tensor::Full({1, 1, 3, 3}, 1.0f);
  Tensor y = Conv2d(x, w, Tensor(), 1, 1);
  // Interior cells see all 9 ones; corners see 4.
  EXPECT_FLOAT_EQ(y.at(5), 9.0f);   // (1,1) interior
  EXPECT_FLOAT_EQ(y.at(0), 4.0f);   // (0,0) corner
}

TEST(Conv2dTest, BiasIsAdded) {
  Tensor x = Tensor::Zeros({1, 1, 2, 2});
  Tensor w = Tensor::FromData({1}, {1, 1, 1, 1});
  Tensor b = Tensor::FromData({2.5f}, {1});
  Tensor y = Conv2d(x, w, b, 0, 0);
  EXPECT_TRUE(AllClose(y, Tensor::Full({1, 1, 2, 2}, 2.5f)));
}

TEST(Conv2dTest, MultiChannelSumsContributions) {
  Tensor x = Tensor::Ones({1, 2, 2, 2});
  Tensor w = Tensor::Full({1, 2, 1, 1}, 3.0f);
  Tensor y = Conv2d(x, w, Tensor(), 0, 0);
  EXPECT_TRUE(AllClose(y, Tensor::Full({1, 1, 2, 2}, 6.0f)));
}

TEST(MovingAvgTest, ConstantSeriesUnchanged) {
  Tensor x = Tensor::Full({1, 10, 2}, 4.0f);
  Tensor y = MovingAvg1d(x, 5);
  EXPECT_EQ(y.shape(), x.shape());
  EXPECT_TRUE(AllClose(y, x, 1e-5f, 1e-6f));
}

TEST(MovingAvgTest, SmoothsLinearRamp) {
  Tensor x = Reshape(Tensor::Arange(8), {1, 8, 1});
  Tensor y = MovingAvg1d(x, 3);
  // Interior t: average of {t-1, t, t+1} = t.
  for (int t = 1; t < 7; ++t) EXPECT_NEAR(y.at(t), static_cast<float>(t), 1e-5f);
  // Edges use replicate padding: (0+0+1)/3, (6+7+7)/3.
  EXPECT_NEAR(y.at(0), 1.0f / 3.0f, 1e-5f);
  EXPECT_NEAR(y.at(7), 20.0f / 3.0f, 1e-5f);
}

TEST(MovingAvgTest, KernelOneIsIdentity) {
  Rng rng(59);
  Tensor x = Tensor::Randn({2, 6, 3}, &rng);
  EXPECT_TRUE(AllClose(MovingAvg1d(x, 1), x));
}

// ---------------------------------------------------------------------------
// Dropout
// ---------------------------------------------------------------------------

TEST(DropoutTest, EvalModeIsIdentity) {
  Rng rng(61);
  Tensor x = Tensor::Randn({4, 4}, &rng);
  Tensor y = Dropout(x, 0.5f, /*training=*/false, &rng);
  EXPECT_TRUE(AllClose(y, x));
}

TEST(DropoutTest, TrainingZeroesApproxFraction) {
  Rng rng(67);
  Tensor x = Tensor::Ones({10000});
  Tensor y = Dropout(x, 0.3f, /*training=*/true, &rng);
  int zeros = 0;
  for (int64_t i = 0; i < y.numel(); ++i) zeros += (y.at(i) == 0.0f);
  EXPECT_NEAR(zeros / 10000.0, 0.3, 0.03);
}

TEST(DropoutTest, SurvivorsAreScaled) {
  Rng rng(71);
  Tensor x = Tensor::Ones({1000});
  Tensor y = Dropout(x, 0.5f, /*training=*/true, &rng);
  for (int64_t i = 0; i < y.numel(); ++i) {
    EXPECT_TRUE(y.at(i) == 0.0f || std::fabs(y.at(i) - 2.0f) < 1e-6f);
  }
}

// ---------------------------------------------------------------------------
// ReduceToShape (broadcast inverse)
// ---------------------------------------------------------------------------

TEST(ReduceToShapeTest, SumOverLeadingAxis) {
  Tensor t = Tensor::Ones({4, 3});
  Tensor r = ReduceToShape(t, {3});
  EXPECT_TRUE(AllClose(r, Tensor::Full({3}, 4.0f)));
}

TEST(ReduceToShapeTest, SumOverUnitAxis) {
  Tensor t = Tensor::Ones({2, 5});
  Tensor r = ReduceToShape(t, {2, 1});
  EXPECT_TRUE(AllClose(r, Tensor::Full({2, 1}, 5.0f)));
}

TEST(ReduceToShapeTest, NoOpWhenShapesMatch) {
  Tensor t = Tensor::Ones({2, 2});
  EXPECT_TRUE(AllClose(ReduceToShape(t, {2, 2}), t));
}

// ---------------------------------------------------------------------------
// Thread-count determinism. Every parallel kernel partitions its output range
// disjointly and preserves the serial per-element accumulation order, so
// results must be BITWISE identical — not merely close — between a
// single-threaded pool and an oversubscribed 8-thread pool.
// ---------------------------------------------------------------------------

class ThreadDeterminismTest : public ::testing::Test {
 protected:
  void TearDown() override { ThreadPool::SetGlobalNumThreads(1); }

  static void ExpectBitwiseEqual(const Tensor& a, const Tensor& b) {
    ASSERT_EQ(a.shape(), b.shape());
    if (a.numel() > 0) {
      EXPECT_EQ(std::memcmp(a.data(), b.data(),
                            sizeof(float) * static_cast<size_t>(a.numel())),
                0);
    }
  }

  // Runs `fn` under 1 thread and under 8 threads and requires every returned
  // tensor (outputs and gradients) to match bit for bit. `fn` must rebuild
  // its inputs from fixed seeds each call.
  static void ExpectSameAcrossThreadCounts(
      const std::function<std::vector<Tensor>()>& fn) {
    ThreadPool::SetGlobalNumThreads(1);
    std::vector<Tensor> serial = fn();
    ThreadPool::SetGlobalNumThreads(8);
    std::vector<Tensor> parallel = fn();
    ASSERT_EQ(serial.size(), parallel.size());
    for (size_t i = 0; i < serial.size(); ++i) {
      SCOPED_TRACE("result index " + std::to_string(i));
      ExpectBitwiseEqual(serial[i], parallel[i]);
    }
  }
};

TEST_F(ThreadDeterminismTest, BatchedMatMulForwardAndGrad) {
  // 96 output rows with a ~25-row grain: the loop fans out across chunks.
  ExpectSameAcrossThreadCounts([] {
    Rng rng(101);
    Tensor a = Tensor::Randn({4, 24, 32}, &rng).set_requires_grad(true);
    Tensor b = Tensor::Randn({4, 32, 20}, &rng).set_requires_grad(true);
    Tensor c = MatMul(a, b);
    Tensor go = Tensor::Randn(c.shape(), &rng);
    c.Backward(go);
    return std::vector<Tensor>{c, a.grad(), b.grad()};
  });
}

TEST_F(ThreadDeterminismTest, BroadcastMatMulForwardAndGrad) {
  // Shared rhs: dB accumulates across batches and must stay serial-ordered.
  ExpectSameAcrossThreadCounts([] {
    Rng rng(102);
    Tensor a = Tensor::Randn({6, 24, 32}, &rng).set_requires_grad(true);
    Tensor b = Tensor::Randn({32, 20}, &rng).set_requires_grad(true);
    Tensor c = MatMul(a, b);
    Tensor go = Tensor::Randn(c.shape(), &rng);
    c.Backward(go);
    return std::vector<Tensor>{c, a.grad(), b.grad()};
  });
}

TEST_F(ThreadDeterminismTest, Conv2dForwardAndGrad) {
  ExpectSameAcrossThreadCounts([] {
    Rng rng(103);
    Tensor x = Tensor::Randn({2, 3, 12, 16}, &rng).set_requires_grad(true);
    Tensor w = Tensor::Randn({8, 3, 3, 3}, &rng).set_requires_grad(true);
    Tensor bias = Tensor::Randn({8}, &rng).set_requires_grad(true);
    Tensor y = Conv2d(x, w, bias, 1, 1);
    Tensor go = Tensor::Randn(y.shape(), &rng);
    y.Backward(go);
    return std::vector<Tensor>{y, x.grad(), w.grad(), bias.grad()};
  });
}

TEST_F(ThreadDeterminismTest, MovingAvgPoolForwardAndGrad) {
  ExpectSameAcrossThreadCounts([] {
    Rng rng(104);
    Tensor x = Tensor::Randn({4, 96, 7}, &rng).set_requires_grad(true);
    Tensor y = MovingAvg1d(x, 25);
    Tensor go = Tensor::Randn(y.shape(), &rng);
    y.Backward(go);
    return std::vector<Tensor>{y, x.grad()};
  });
}

TEST_F(ThreadDeterminismTest, ReduceSumForwardAndGrad) {
  // 131072 elements over a 512-long reduced axis: both the parallel gather
  // (forward) and the chunked broadcast (backward) engage.
  ExpectSameAcrossThreadCounts([] {
    Rng rng(105);
    Tensor x = Tensor::Randn({64, 512, 4}, &rng).set_requires_grad(true);
    Tensor y = Sum(x, {1});
    Tensor go = Tensor::Randn(y.shape(), &rng);
    y.Backward(go);
    return std::vector<Tensor>{y, x.grad()};
  });
}

TEST_F(ThreadDeterminismTest, ElementwiseAndUnaryForwardAndGrad) {
  // 2^17 elements clears the elementwise fan-out threshold.
  ExpectSameAcrossThreadCounts([] {
    Rng rng(106);
    Tensor a = Tensor::Randn({1 << 17}, &rng).set_requires_grad(true);
    Tensor b = Tensor::Randn({1 << 17}, &rng).set_requires_grad(true);
    Tensor y = Exp(MulScalar(Mul(Add(a, b), b), 0.25f));
    Tensor go = Tensor::Randn(y.shape(), &rng);
    y.Backward(go);
    return std::vector<Tensor>{y, a.grad(), b.grad()};
  });
}

TEST_F(ThreadDeterminismTest, SoftmaxForwardAndGrad) {
  ExpectSameAcrossThreadCounts([] {
    Rng rng(107);
    Tensor x = Tensor::Randn({256, 256}, &rng).set_requires_grad(true);
    Tensor y = Softmax(x, 1);
    Tensor go = Tensor::Randn(y.shape(), &rng);
    y.Backward(go);
    return std::vector<Tensor>{y, x.grad()};
  });
}

TEST_F(ThreadDeterminismTest, GradCheckPassesUnderParallelPool) {
  // Finite-difference gradcheck with the pool fanned out: the analytic
  // gradients computed by the parallel kernels must agree with numerics.
  ThreadPool::SetGlobalNumThreads(8);
  Rng rng(108);
  Tensor a = Tensor::Randn({2, 6, 5}, &rng);
  Tensor b = Tensor::Randn({2, 5, 4}, &rng);
  auto mm = [](const std::vector<Tensor>& in) {
    return Sum(Square(MatMul(in[0], in[1])));
  };
  auto r = CheckGradients(mm, {a, b});
  EXPECT_TRUE(r.ok) << r.message;

  Tensor x = Tensor::Randn({1, 2, 6, 6}, &rng);
  Tensor w = Tensor::Randn({3, 2, 3, 3}, &rng);
  auto conv = [](const std::vector<Tensor>& in) {
    return Sum(Square(Conv2d(in[0], in[1], Tensor(), 1, 1)));
  };
  r = CheckGradients(conv, {x, w}, 1e-2f, 5e-2f);
  EXPECT_TRUE(r.ok) << r.message;

  Tensor s = Tensor::Randn({2, 12, 3}, &rng);
  auto pool = [](const std::vector<Tensor>& in) {
    return Sum(Square(MovingAvg1d(in[0], 5)));
  };
  r = CheckGradients(pool, {s});
  EXPECT_TRUE(r.ok) << r.message;
}

}  // namespace
}  // namespace ts3net
