// Behaviour-level tests for the defining mechanism of each baseline:
// causality of the TCN, the LSTM state recursion, SCINet's interleaving,
// FEDformer's frequency truncation, Informer's distilling pyramid.

#include <gtest/gtest.h>

#include <cmath>

#include "core/classifier.h"
#include "models/rnn.h"
#include "models/scinet.h"
#include "models/tcn.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "tensor/ops.h"
#include "train/trainer.h"

namespace ts3net {
namespace models {
namespace {

// ---------------------------------------------------------------------------
// DilatedCausalConv1d
// ---------------------------------------------------------------------------

TEST(TcnTest, ConvIsCausal) {
  Rng rng(1);
  DilatedCausalConv1d conv(2, 2, /*num_taps=*/3, /*dilation=*/2, &rng);
  Tensor x = Tensor::Randn({1, 12, 2}, &rng);
  Tensor y1 = conv.Forward(x);
  // Perturb the future (last step); outputs before it must not change.
  Tensor x2 = x.Clone();
  x2.data()[11 * 2] += 100.0f;
  x2.data()[11 * 2 + 1] -= 100.0f;
  Tensor y2 = conv.Forward(x2);
  for (int64_t t = 0; t < 11; ++t) {
    for (int64_t d = 0; d < 2; ++d) {
      EXPECT_FLOAT_EQ(y1.at(t * 2 + d), y2.at(t * 2 + d)) << "t=" << t;
    }
  }
  // The final step must change (it sees its own input).
  EXPECT_NE(y1.at(11 * 2), y2.at(11 * 2));
}

TEST(TcnTest, DilationControlsReceptiveField) {
  Rng rng(2);
  DilatedCausalConv1d conv(1, 1, /*num_taps=*/2, /*dilation=*/4, &rng);
  Tensor x = Tensor::Zeros({1, 12, 1});
  Tensor y0 = conv.Forward(x);
  // An impulse at t=0 affects exactly t=0 (tap 0) and t=4 (tap 1).
  Tensor xi = x.Clone();
  xi.data()[0] = 1.0f;
  Tensor yi = conv.Forward(xi);
  for (int64_t t = 0; t < 12; ++t) {
    const bool affected = (t == 0 || t == 4);
    if (affected) {
      EXPECT_NE(yi.at(t), y0.at(t)) << "t=" << t;
    } else {
      EXPECT_FLOAT_EQ(yi.at(t), y0.at(t)) << "t=" << t;
    }
  }
}

// ---------------------------------------------------------------------------
// LstmCell
// ---------------------------------------------------------------------------

TEST(LstmTest, StateShapesAndBoundedActivations) {
  Rng rng(3);
  LstmCell cell(3, 5, &rng);
  LstmCell::State state{Tensor::Zeros({2, 5}), Tensor::Zeros({2, 5})};
  Tensor x_t = Tensor::Randn({2, 3}, &rng, 3.0f);
  auto next = cell.Step(x_t, state);
  EXPECT_EQ(next.h.shape(), (Shape{2, 5}));
  EXPECT_EQ(next.c.shape(), (Shape{2, 5}));
  // h = o * tanh(c) is bounded in (-1, 1).
  for (int64_t i = 0; i < next.h.numel(); ++i) {
    EXPECT_LT(std::fabs(next.h.at(i)), 1.0f);
  }
}

TEST(LstmTest, StatePropagatesInformation) {
  Rng rng(4);
  LstmCell cell(1, 4, &rng);
  // Two sequences identical except for the first step: final hidden states
  // must differ (memory).
  Tensor a = Tensor::Zeros({1, 6, 1});
  Tensor b = Tensor::Zeros({1, 6, 1});
  b.data()[0] = 5.0f;
  Tensor ha = cell.Forward(a);
  Tensor hb = cell.Forward(b);
  EXPECT_FALSE(AllClose(ha, hb, 1e-4f, 1e-5f));
}

TEST(LstmTest, GradFlowsThroughTime) {
  Rng rng(5);
  LstmCell cell(2, 3, &rng);
  Tensor x = Tensor::Randn({1, 8, 2}, &rng).set_requires_grad(true);
  Sum(Square(cell.Forward(x))).Backward();
  ASSERT_TRUE(x.grad().defined());
  // The earliest time step should receive some gradient through the
  // recurrence.
  float early = 0;
  for (int64_t d = 0; d < 2; ++d) early += std::fabs(x.grad().at(d));
  EXPECT_GT(early, 0.0f);
}

// ---------------------------------------------------------------------------
// SciBlock
// ---------------------------------------------------------------------------

TEST(SciNetTest, BlockPreservesShapeAndMixesHalves) {
  Rng rng(6);
  SciBlock block(4, &rng);
  Tensor x = Tensor::Randn({2, 10, 4}, &rng);
  Tensor y = block.Forward(x);
  EXPECT_EQ(y.shape(), x.shape());
  // Changing an odd-position step must affect even outputs (interaction).
  Tensor x2 = x.Clone();
  for (int64_t d = 0; d < 4; ++d) x2.data()[(1 * 4) + d] += 10.0f;  // t=1 (odd)
  Tensor y2 = block.Forward(x2);
  float even_diff = 0;
  for (int64_t d = 0; d < 4; ++d) {
    even_diff += std::fabs(y2.at(0 * 4 + d) - y.at(0 * 4 + d));  // t=0 (even)
  }
  EXPECT_GT(even_diff, 1e-4f);
}

TEST(SciNetDeathTest, OddLengthRejected) {
  Rng rng(7);
  SciBlock block(2, &rng);
  Tensor x = Tensor::Zeros({1, 9, 2});
  EXPECT_DEATH(block.Forward(x), "even length");
}

// ---------------------------------------------------------------------------
// LR scheduling
// ---------------------------------------------------------------------------

TEST(LrDecayTest, DecaySlowsLateEpochs) {
  // With decay=0 after the first epoch the LR becomes ~0: the model must be
  // identical to its state after epoch 1 regardless of later epochs.
  // (Decay 1e-6 approximates that while exercising the code path.)
  // We simply check the option is consumed without breaking training.
  Rng rng(8);
  data::ClassificationOptions gen;
  gen.num_classes = 2;
  gen.samples_per_class = 12;
  gen.length = 16;
  gen.channels = 1;
  auto all = data::GenerateClassificationData(gen);

  core::TS3NetOptions opt;
  opt.seq_len = 16;
  opt.channels = 1;
  opt.d_model = 4;
  opt.d_ff = 4;
  opt.lambda = 3;
  opt.num_blocks = 1;
  opt.dropout = 0.0f;
  core::TS3NetClassifier model(opt, 2, &rng);
  train::TrainOptions topt;
  topt.epochs = 2;
  topt.lr = 1e-3f;
  topt.lr_decay = 0.5f;
  topt.patience = 5;
  auto fit = train::FitClassification(&model, all, all, topt);
  EXPECT_EQ(fit.epochs_run, 2);
}

}  // namespace
}  // namespace models
}  // namespace ts3net
