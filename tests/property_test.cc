// Property-based cross-checks: the optimized kernels (MatMul batching,
// Conv2d, broadcasting, FFT, S-GD) are validated against naive reference
// implementations over randomized parameter sweeps.

#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "core/sgd_layer.h"
#include "signal/cwt.h"
#include "signal/fft.h"
#include "tensor/ops.h"

namespace ts3net {
namespace {

constexpr double kPi = 3.14159265358979323846;

// ---------------------------------------------------------------------------
// FFT vs naive DFT
// ---------------------------------------------------------------------------

class FftVsNaiveTest : public ::testing::TestWithParam<size_t> {};

TEST_P(FftVsNaiveTest, MatchesNaiveDft) {
  const size_t n = GetParam();
  Rng rng(n);
  std::vector<Complex> x(n);
  for (auto& v : x) v = Complex(rng.Gaussian(0, 1), rng.Gaussian(0, 1));

  std::vector<Complex> naive(n, Complex(0, 0));
  for (size_t k = 0; k < n; ++k) {
    for (size_t t = 0; t < n; ++t) {
      const double angle = -2.0 * kPi * static_cast<double>(k) * t / n;
      naive[k] += x[t] * Complex(std::cos(angle), std::sin(angle));
    }
  }
  std::vector<Complex> fast = x;
  Fft(&fast);
  for (size_t k = 0; k < n; ++k) {
    EXPECT_NEAR(fast[k].real(), naive[k].real(), 1e-7 * n) << "n=" << n;
    EXPECT_NEAR(fast[k].imag(), naive[k].imag(), 1e-7 * n) << "n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftVsNaiveTest,
                         ::testing::Values(2, 3, 5, 8, 13, 16, 21, 36, 64,
                                           96, 100));

// ---------------------------------------------------------------------------
// MatMul vs naive triple loop (shape sweep incl. broadcast batches)
// ---------------------------------------------------------------------------

struct MatMulShape {
  Shape a;
  Shape b;
};

class MatMulVsNaiveTest : public ::testing::TestWithParam<MatMulShape> {};

TEST_P(MatMulVsNaiveTest, MatchesNaive) {
  const MatMulShape& shapes = GetParam();
  Rng rng(11);
  Tensor a = Tensor::Randn(shapes.a, &rng);
  Tensor b = Tensor::Randn(shapes.b, &rng);
  Tensor c = MatMul(a, b);

  // Naive reference via explicit slicing.
  const int64_t m = shapes.a[shapes.a.size() - 2];
  const int64_t k = shapes.a[shapes.a.size() - 1];
  const int64_t n = shapes.b[shapes.b.size() - 1];
  const int64_t batches = c.numel() / (m * n);
  const int64_t a_mats = a.numel() / (m * k);
  const int64_t b_mats = b.numel() / (k * n);
  // The chosen shapes broadcast only entire batch axes, so the matrix index
  // of each operand is bi modulo its own matrix count.
  for (int64_t bi = 0; bi < batches; ++bi) {
    const float* pa = a.data() + (bi % a_mats) * m * k;
    const float* pb = b.data() + (bi % b_mats) * k * n;
    for (int64_t i = 0; i < m; ++i) {
      for (int64_t j = 0; j < n; ++j) {
        double acc = 0;
        for (int64_t p = 0; p < k; ++p) acc += pa[i * k + p] * pb[p * n + j];
        EXPECT_NEAR(c.at((bi * m + i) * n + j), acc, 1e-4)
            << "batch " << bi << " i " << i << " j " << j;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MatMulVsNaiveTest,
    ::testing::Values(MatMulShape{{1, 1}, {1, 1}},
                      MatMulShape{{5, 3}, {3, 7}},
                      MatMulShape{{4, 2, 3}, {4, 3, 2}},
                      MatMulShape{{3, 5, 4}, {4, 6}},
                      MatMulShape{{2, 2, 3, 4}, {2, 2, 4, 5}}));

// ---------------------------------------------------------------------------
// Conv2d vs naive five-loop reference
// ---------------------------------------------------------------------------

struct ConvCase {
  int64_t batch, cin, cout, h, w, kh, kw, ph, pw;
};

class Conv2dVsNaiveTest : public ::testing::TestWithParam<ConvCase> {};

TEST_P(Conv2dVsNaiveTest, MatchesNaive) {
  const ConvCase& c = GetParam();
  Rng rng(13);
  Tensor x = Tensor::Randn({c.batch, c.cin, c.h, c.w}, &rng);
  Tensor w = Tensor::Randn({c.cout, c.cin, c.kh, c.kw}, &rng);
  Tensor bias = Tensor::Randn({c.cout}, &rng);
  Tensor y = Conv2d(x, w, bias, c.ph, c.pw);

  const int64_t ho = c.h + 2 * c.ph - c.kh + 1;
  const int64_t wo = c.w + 2 * c.pw - c.kw + 1;
  ASSERT_EQ(y.shape(), (Shape{c.batch, c.cout, ho, wo}));
  for (int64_t b = 0; b < c.batch; ++b) {
    for (int64_t o = 0; o < c.cout; ++o) {
      for (int64_t yy = 0; yy < ho; ++yy) {
        for (int64_t xx = 0; xx < wo; ++xx) {
          double acc = bias.at(o);
          for (int64_t i = 0; i < c.cin; ++i) {
            for (int64_t dy = 0; dy < c.kh; ++dy) {
              for (int64_t dx = 0; dx < c.kw; ++dx) {
                const int64_t sy = yy + dy - c.ph;
                const int64_t sx = xx + dx - c.pw;
                if (sy < 0 || sy >= c.h || sx < 0 || sx >= c.w) continue;
                acc += x.at(((b * c.cin + i) * c.h + sy) * c.w + sx) *
                       w.at(((o * c.cin + i) * c.kh + dy) * c.kw + dx);
              }
            }
          }
          EXPECT_NEAR(y.at(((b * c.cout + o) * ho + yy) * wo + xx), acc, 1e-3);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, Conv2dVsNaiveTest,
    ::testing::Values(ConvCase{1, 1, 1, 3, 3, 1, 1, 0, 0},
                      ConvCase{2, 2, 3, 4, 5, 3, 3, 1, 1},
                      ConvCase{1, 3, 2, 5, 4, 3, 5, 1, 2},
                      ConvCase{1, 1, 2, 6, 6, 5, 5, 2, 2},
                      ConvCase{2, 2, 2, 2, 8, 1, 3, 0, 1}));

// ---------------------------------------------------------------------------
// Broadcasting vs naive expansion
// ---------------------------------------------------------------------------

struct BroadcastCase {
  Shape a;
  Shape b;
};

class BroadcastVsNaiveTest : public ::testing::TestWithParam<BroadcastCase> {};

TEST_P(BroadcastVsNaiveTest, AddMatchesManualExpansion) {
  const BroadcastCase& c = GetParam();
  Rng rng(17);
  Tensor a = Tensor::Randn(c.a, &rng);
  Tensor b = Tensor::Randn(c.b, &rng);
  Tensor sum = Add(a, b);
  const Shape out = BroadcastShapes(c.a, c.b);
  ASSERT_EQ(sum.shape(), out);

  // Reference via coordinate arithmetic.
  const auto out_strides = RowMajorStrides(out);
  auto value_at = [&](const Tensor& t, const std::vector<int64_t>& coords) {
    const Shape& s = t.shape();
    const size_t off = out.size() - s.size();
    int64_t idx = 0;
    int64_t stride = 1;
    for (size_t d = s.size(); d-- > 0;) {
      const int64_t coord = s[d] == 1 ? 0 : coords[d + off];
      idx += coord * stride;
      stride *= s[d];
    }
    return t.at(idx);
  };
  std::vector<int64_t> coords(out.size(), 0);
  for (int64_t i = 0; i < sum.numel(); ++i) {
    int64_t rem = i;
    for (size_t d = 0; d < out.size(); ++d) {
      coords[d] = rem / out_strides[d];
      rem %= out_strides[d];
    }
    EXPECT_NEAR(sum.at(i), value_at(a, coords) + value_at(b, coords), 1e-5);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, BroadcastVsNaiveTest,
    ::testing::Values(BroadcastCase{{3, 4}, {4}},
                      BroadcastCase{{2, 1, 3}, {5, 1}},
                      BroadcastCase{{4, 1}, {1, 6}},
                      BroadcastCase{{2, 3, 1, 2}, {1, 4, 2}},
                      BroadcastCase{{}, {3, 3}}));

// ---------------------------------------------------------------------------
// S-GD identity property across a parameter grid
// ---------------------------------------------------------------------------

struct SgdCase {
  int lambda;
  int64_t seq_len;
  int64_t t_f;
};

class SgdIdentityTest : public ::testing::TestWithParam<SgdCase> {};

TEST_P(SgdIdentityTest, RegularPlusFluctuantReconstructs) {
  const SgdCase& c = GetParam();
  WaveletBankOptions opt;
  opt.num_subbands = c.lambda;
  WaveletBank bank = WaveletBank::Create(opt);
  core::SpectrumGradientLayer layer(&bank, c.seq_len);
  Rng rng(19);
  Tensor x = Tensor::Randn({2, c.seq_len, 3}, &rng);
  auto out = layer.Decompose(x, c.t_f);
  EXPECT_TRUE(AllClose(Add(out.regular, out.fluctuant_1d), x, 1e-4f, 1e-4f))
      << "lambda=" << c.lambda << " T=" << c.seq_len << " t_f=" << c.t_f;
  // The fluctuant 1-D part must equal IWT of the 2-D plane.
  Tensor iwt = IwtOp(out.fluctuant_2d, bank);
  EXPECT_TRUE(AllClose(iwt, out.fluctuant_1d, 1e-4f, 1e-5f));
}

INSTANTIATE_TEST_SUITE_P(Grid, SgdIdentityTest,
                         ::testing::Values(SgdCase{2, 8, 1}, SgdCase{4, 16, 4},
                                           SgdCase{4, 24, 7},
                                           SgdCase{6, 32, 8},
                                           SgdCase{6, 32, 32},
                                           SgdCase{8, 48, 100}));

// ---------------------------------------------------------------------------
// MovingAvg kernel sweep: output equals brute-force windowed mean
// ---------------------------------------------------------------------------

class MovingAvgSweepTest : public ::testing::TestWithParam<int64_t> {};

TEST_P(MovingAvgSweepTest, MatchesBruteForce) {
  const int64_t k = GetParam();
  Rng rng(23);
  const int64_t t_len = 20;
  Tensor x = Tensor::Randn({1, t_len, 2}, &rng);
  Tensor y = MovingAvg1d(x, k);
  ASSERT_EQ(y.shape(), x.shape());
  const int64_t front = (k - 1) / 2;
  for (int64_t t = 0; t < t_len; ++t) {
    for (int64_t c = 0; c < 2; ++c) {
      double acc = 0;
      for (int64_t j = 0; j < k; ++j) {
        int64_t src = t - front + j;
        src = std::max<int64_t>(0, std::min(t_len - 1, src));  // replicate pad
        acc += x.at(src * 2 + c);
      }
      EXPECT_NEAR(y.at(t * 2 + c), acc / k, 1e-4) << "k=" << k << " t=" << t;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Kernels, MovingAvgSweepTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 19));

// ---------------------------------------------------------------------------
// Softmax properties over axis sweep
// ---------------------------------------------------------------------------

class SoftmaxAxisTest : public ::testing::TestWithParam<int> {};

TEST_P(SoftmaxAxisTest, SumsToOneAndIsShiftInvariant) {
  const int axis = GetParam();
  Rng rng(29);
  Tensor x = Tensor::Randn({3, 4, 5}, &rng);
  Tensor s = Softmax(x, axis);
  Tensor sums = Sum(s, {axis});
  for (int64_t i = 0; i < sums.numel(); ++i) {
    EXPECT_NEAR(sums.at(i), 1.0f, 1e-5f);
  }
  // Shift invariance: softmax(x + c) == softmax(x).
  Tensor shifted = Softmax(AddScalar(x, 5.0f), axis);
  EXPECT_TRUE(AllClose(shifted, s, 1e-4f, 1e-5f));
}

INSTANTIATE_TEST_SUITE_P(Axes, SoftmaxAxisTest, ::testing::Values(0, 1, 2));

}  // namespace
}  // namespace ts3net
